"""Unit tests for the i-code reference interpreter."""

import pytest

from repro.core.errors import SplSemanticError
from repro.core.icode import (
    FConst,
    FVar,
    IExpr,
    Intrinsic,
    Loop,
    Op,
    Program,
    VEC_INPUT,
    VEC_OUTPUT,
    VEC_TEMP,
    VecInfo,
    VecRef,
)
from repro.core.interpreter import run_program


def program_with(body, *, in_size=2, out_size=2, temps=(), tables=None,
                 strided=False):
    program = Program(name="p", in_size=in_size, out_size=out_size,
                      datatype="real", body=body, strided=strided)
    program.vectors["x"] = VecInfo("x", in_size, VEC_INPUT)
    program.vectors["y"] = VecInfo("y", out_size, VEC_OUTPUT)
    for name, size in temps:
        program.vectors[name] = VecInfo(name, size, VEC_TEMP)
    program.tables.update(tables or {})
    return program


class TestBasics:
    def test_copy(self):
        p = program_with([Op("=", VecRef("y", IExpr.const(0)),
                             VecRef("x", IExpr.const(1)))])
        assert run_program(p, [1.0, 2.0]) == [2.0, 0.0]

    def test_arithmetic_ops(self):
        x0 = VecRef("x", IExpr.const(0))
        x1 = VecRef("x", IExpr.const(1))
        p = program_with([
            Op("+", VecRef("y", IExpr.const(0)), x0, x1),
            Op("-", VecRef("y", IExpr.const(1)), x0, x1),
        ])
        assert run_program(p, [5.0, 3.0]) == [8.0, 2.0]

    def test_neg_and_div(self):
        x0 = VecRef("x", IExpr.const(0))
        p = program_with([
            Op("neg", VecRef("y", IExpr.const(0)), x0),
            Op("/", VecRef("y", IExpr.const(1)), x0, FConst(2.0)),
        ])
        assert run_program(p, [6.0, 0.0]) == [-6.0, 3.0]

    def test_loop_executes_count_times(self):
        i = IExpr.var("i0")
        p = program_with(
            [Loop("i0", 4, [Op("=", VecRef("y", i), VecRef("x", i))])],
            in_size=4, out_size=4,
        )
        assert run_program(p, [1.0, 2.0, 3.0, 4.0]) == [1.0, 2.0, 3.0, 4.0]

    def test_scalars(self):
        p = program_with([
            Op("=", FVar("f0"), VecRef("x", IExpr.const(0))),
            Op("*", VecRef("y", IExpr.const(0)), FVar("f0"), FVar("f0")),
        ])
        assert run_program(p, [3.0, 0.0]) == [9.0, 0.0]

    def test_intrinsic_operand(self):
        p = program_with([
            Op("*", VecRef("y", IExpr.const(0)),
               Intrinsic("W", (IExpr.const(2), IExpr.const(1))),
               VecRef("x", IExpr.const(0))),
        ])
        out = run_program(p, [2.0, 0.0])
        assert out[0] == pytest.approx(-2.0)

    def test_table_lookup(self):
        i = IExpr.var("i0")
        p = program_with(
            [Loop("i0", 2, [
                Op("*", VecRef("y", i), VecRef("d0", i), VecRef("x", i)),
            ])],
            tables={"d0": (2.0, 3.0)},
        )
        assert run_program(p, [1.0, 1.0]) == [2.0, 3.0]


class TestErrors:
    def test_wrong_input_length(self):
        p = program_with([])
        with pytest.raises(SplSemanticError):
            run_program(p, [1.0])

    def test_unset_scalar_read(self):
        p = program_with([Op("=", VecRef("y", IExpr.const(0)), FVar("f9"))])
        with pytest.raises(SplSemanticError):
            run_program(p, [0.0, 0.0])

    def test_out_of_range_subscript(self):
        p = program_with([Op("=", VecRef("y", IExpr.const(5)),
                             VecRef("x", IExpr.const(0)))])
        with pytest.raises(SplSemanticError):
            run_program(p, [0.0, 0.0])

    def test_unbound_index_variable(self):
        p = program_with([Op("=", VecRef("y", IExpr.var("i9")),
                             VecRef("x", IExpr.const(0)))])
        with pytest.raises(SplSemanticError):
            run_program(p, [0.0, 0.0])

    def test_unknown_vector(self):
        p = program_with([Op("=", VecRef("zz", IExpr.const(0)),
                             VecRef("x", IExpr.const(0)))])
        with pytest.raises(SplSemanticError):
            run_program(p, [0.0, 0.0])


class TestStrided:
    def make(self):
        # y[oofs + k*ostride] = x[iofs + k*istride], k < 2
        k = IExpr.var("i0")
        body = [Loop("i0", 2, [
            Op("=",
               VecRef("y", IExpr.var("oofs") + k * IExpr.var("ostride")),
               VecRef("x", IExpr.var("iofs") + k * IExpr.var("istride"))),
        ])]
        return program_with(body, strided=True)

    def test_default_strides(self):
        assert run_program(self.make(), [7.0, 8.0]) == [7.0, 8.0]

    def test_input_stride(self):
        out = run_program(self.make(), [1.0, 0.0, 2.0, 0.0], istride=2)
        assert out[:2] == [1.0, 2.0]

    def test_output_offset(self):
        out = run_program(self.make(), [1.0, 2.0], oofs=1, ostride=1)
        assert out == [0.0, 1.0, 2.0]
