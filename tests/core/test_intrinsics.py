"""Unit tests for intrinsic evaluation (Section 3.3.2)."""

import math

import pytest

from repro.core.codegen import CodeGenerator
from repro.core.compiler import SplCompiler
from repro.core.errors import SplSemanticError
from repro.core.icode import FConst, Intrinsic, iter_ops
from repro.core.intrinsics import (
    INTRINSICS,
    evaluate_intrinsics,
    register_intrinsic,
)
from repro.core.parser import parse_formula_text
from repro.core.unroll import unroll_loops
from tests.conftest import assert_program_matches_matrix


def generate(text: str, *, unroll_all=False):
    compiler = SplCompiler()
    gen = CodeGenerator(compiler.templates, unroll_all=unroll_all)
    return gen.generate(parse_formula_text(text), "test", "complex")


def has_intrinsics(program) -> bool:
    return any(
        isinstance(operand, Intrinsic)
        for op in iter_ops(program.body)
        for operand in op.operands()
    )


class TestConstantEvaluation:
    def test_unrolled_twiddles_become_constants(self):
        program = generate("(T 8 4)", unroll_all=True)
        unroll_loops(program)
        evaluate_intrinsics(program)
        assert not has_intrinsics(program)
        assert program.tables == {}
        assert_program_matches_matrix(program, "(T 8 4)")

    def test_w_value(self):
        program = generate("(T 4 2)", unroll_all=True)
        unroll_loops(program)
        evaluate_intrinsics(program)
        consts = [
            operand.value
            for op in iter_ops(program.body)
            for operand in op.operands()
            if isinstance(operand, FConst)
        ]
        # T^4_2 contains w_4^1 = -i.
        assert any(abs(value - (-1j)) < 1e-12 for value in consts)


class TestTableGeneration:
    def test_looped_twiddles_tabulated(self):
        program = generate("(T 16 4)")
        evaluate_intrinsics(program)
        assert not has_intrinsics(program)
        assert len(program.tables) == 1
        (values,) = program.tables.values()
        assert len(values) == 16
        assert_program_matches_matrix(program, "(T 16 4)")

    def test_table_values_match_omega(self):
        program = generate("(T 8 2)")
        evaluate_intrinsics(program)
        (values,) = program.tables.values()
        # Table indexed by (i, j) with i outer (4) and j inner (2).
        w = [math.e ** 0]  # placeholder to keep flake quiet
        import cmath
        for i in range(4):
            for j in range(2):
                expected = cmath.exp(-2j * math.pi * (i * j) / 8)
                assert abs(complex(values[i * 2 + j]) - expected) < 1e-12

    def test_identical_tables_shared(self):
        program = generate("(compose (T 16 4) (T 16 4))")
        evaluate_intrinsics(program)
        assert len(program.tables) == 1

    def test_general_f_tabulates_product_index(self):
        program = generate("(F 5)")
        evaluate_intrinsics(program)
        assert len(program.tables) == 1
        (values,) = program.tables.values()
        assert len(values) == 25  # full (i, j) product space
        assert_program_matches_matrix(program, "(F 5)")


class TestRegistry:
    def test_register_and_use(self):
        register_intrinsic("TESTSQ", lambda k: float(k * k))
        assert INTRINSICS["TESTSQ"](3) == 9.0

    def test_walsh_values(self):
        wh = INTRINSICS["WH"]
        assert wh(0, 0) == 1
        assert wh(1, 1) == -1
        assert wh(3, 3) == 1  # popcount(3) = 2

    def test_dct_intrinsics(self):
        dc2 = INTRINSICS["DC2"]
        assert dc2(4, 0, 0) == pytest.approx(1.0)
        dc4 = INTRINSICS["DC4"]
        assert dc4(1, 0, 0) == pytest.approx(math.cos(math.pi / 4))

    def test_unknown_intrinsic_raises(self):
        from repro.core.icode import IExpr, Op, FVar, Program

        program = Program(name="p", in_size=1, out_size=1, datatype="real")
        program.body = [
            Op("=", FVar("f0"), Intrinsic("NOSUCH", (IExpr.const(1),)))
        ]
        with pytest.raises(SplSemanticError):
            evaluate_intrinsics(program)


class TestDefinitionTemplatesWithIntrinsics:
    @pytest.mark.parametrize("text", ["(WHT 4)", "(DCT2 4)", "(DCT4 4)"])
    def test_transform_definitions(self, text):
        program = generate(text)
        evaluate_intrinsics(program)
        assert_program_matches_matrix(program, text)
