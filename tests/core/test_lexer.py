"""Unit tests for the SPL tokenizer."""

import pytest

from repro.core import lexer
from repro.core.errors import SplSyntaxError
from repro.core.lexer import Token, TokenStream, tokenize


def kinds(source: str) -> list[str]:
    return [t.kind for t in tokenize(source) if t.kind != lexer.NEWLINE][:-1]


def values(source: str) -> list[str]:
    return [
        t.value for t in tokenize(source)
        if t.kind not in (lexer.NEWLINE, lexer.EOF)
    ]


class TestBasicTokens:
    def test_parens_and_names(self):
        assert kinds("(F 2)") == [lexer.LPAREN, lexer.NAME, lexer.NUMBER,
                                  lexer.RPAREN]

    def test_numbers(self):
        assert values("12 1.23 .5 2e3 1.5e-2") == \
            ["12", "1.23", ".5", "2e3", "1.5e-2"]

    def test_number_kinds(self):
        assert all(k == lexer.NUMBER for k in kinds("12 1.23 2e3"))

    def test_dollar_variables(self):
        assert values("$in $out $i0 $f12 $r0 $in_stride") == \
            ["$in", "$out", "$i0", "$f12", "$r0", "$in_stride"]

    def test_operators(self):
        assert values("+ - * / == != <= >= < > && || =") == \
            ["+", "-", "*", "/", "==", "!=", "<=", ">=", "<", ">",
             "&&", "||", "="]

    def test_brackets_and_commas(self):
        assert kinds("[x_ , 1]") == [lexer.LBRACKET, lexer.NAME, lexer.COMMA,
                                     lexer.NUMBER, lexer.RBRACKET]

    def test_dot_for_properties(self):
        toks = values("A_.in_size")
        assert toks == ["A_", ".", "in_size"]


class TestCommentsAndDirectives:
    def test_semicolon_comment_stripped(self):
        assert values("(F 2) ; the Fourier transform") == ["(", "F", "2", ")"]

    def test_full_line_comment(self):
        assert values("; nothing here\n(I 1)") == ["(", "I", "1", ")"]

    def test_directive_token(self):
        toks = tokenize("#subname fft16")
        assert toks[0].kind == lexer.DIRECTIVE
        assert toks[0].value == "subname fft16"

    def test_directive_with_leading_space(self):
        toks = tokenize("   #unroll on")
        assert toks[0].kind == lexer.DIRECTIVE
        assert toks[0].value == "unroll on"

    def test_directive_comment_stripped(self):
        toks = tokenize("#datatype real ; use doubles")
        assert toks[0].value == "datatype real"


class TestLineTracking:
    def test_line_numbers(self):
        toks = tokenize("(I 1)\n(F 2)")
        f_tok = [t for t in toks if t.value == "F"][0]
        assert f_tok.line == 2

    def test_error_has_line(self):
        with pytest.raises(SplSyntaxError) as err:
            tokenize("(I 1)\n(F @)")
        assert "line 2" in str(err.value)


class TestTokenStream:
    def test_peek_does_not_advance(self):
        ts = TokenStream(tokenize("(F 2)"))
        assert ts.peek().kind == lexer.LPAREN
        assert ts.peek().kind == lexer.LPAREN

    def test_next_advances(self):
        ts = TokenStream(tokenize("(F 2)"))
        ts.next()
        assert ts.peek().kind == lexer.NAME

    def test_expect_success_and_failure(self):
        ts = TokenStream(tokenize("(F"))
        ts.expect(lexer.LPAREN)
        with pytest.raises(SplSyntaxError):
            ts.expect(lexer.NUMBER)

    def test_match_restores_position_on_failure(self):
        ts = TokenStream(tokenize("(F"))
        assert ts.match(lexer.NUMBER) is None
        assert ts.peek().kind == lexer.LPAREN

    def test_skip_newlines(self):
        ts = TokenStream(tokenize("\n\n(I 1)"))
        assert ts.peek(skip_newlines=True).kind == lexer.LPAREN

    def test_eof_is_sticky(self):
        ts = TokenStream(tokenize(""))
        assert ts.next(skip_newlines=True).kind == lexer.EOF
        assert ts.next(skip_newlines=True).kind == lexer.EOF
        assert ts.at_eof()

    def test_seek(self):
        ts = TokenStream(tokenize("(F 2)"))
        pos = ts.position
        ts.next()
        ts.seek(pos)
        assert ts.peek().kind == lexer.LPAREN
