"""Unit tests for the formula AST node types."""

import pytest

from repro.core.errors import SplSemanticError
from repro.core.nodes import (
    Compose,
    DiagonalLit,
    DirectSum,
    MatrixLit,
    Param,
    PermutationLit,
    Tensor,
    compose,
    default_param_sizes,
    direct_sum,
    fourier,
    identity,
    reversal,
    stride,
    tensor,
    twiddle,
)


def sizes(formula):
    return formula.size(default_param_sizes)


class TestBuilders:
    def test_helpers_build_params(self):
        assert identity(4) == Param(name="I", params=(4,))
        assert fourier(8) == Param(name="F", params=(8,))
        assert stride(16, 4) == Param(name="L", params=(16, 4))
        assert twiddle(16, 4) == Param(name="T", params=(16, 4))
        assert reversal(3) == Param(name="J", params=(3,))

    def test_nary_compose_right_associates(self):
        f = compose(identity(2), identity(2), identity(2))
        assert isinstance(f, Compose)
        assert isinstance(f.right, Compose)

    def test_nary_single_operand(self):
        assert compose(identity(2)) == identity(2)

    def test_nary_empty_rejected(self):
        with pytest.raises(SplSemanticError):
            tensor()


class TestSizes:
    def test_param_sizes(self):
        assert sizes(fourier(8)) == (8, 8)
        assert sizes(stride(12, 3)) == (12, 12)

    def test_compose_checks_inner_sizes(self):
        good = compose(fourier(4), stride(4, 2))
        assert sizes(good) == (4, 4)
        bad = compose(fourier(4), fourier(2))
        with pytest.raises(SplSemanticError):
            sizes(bad)

    def test_tensor_multiplies(self):
        assert sizes(tensor(fourier(4), identity(3))) == (12, 12)

    def test_direct_sum_adds(self):
        assert sizes(direct_sum(fourier(4), identity(3))) == (7, 7)

    def test_rectangular_literal(self):
        m = MatrixLit(rows=((1, 2, 3), (4, 5, 6)))
        assert sizes(m) == (3, 2)

    def test_stride_param_validation(self):
        with pytest.raises(SplSemanticError):
            sizes(stride(10, 3))

    def test_wht_power_of_two(self):
        with pytest.raises(SplSemanticError):
            sizes(Param(name="WHT", params=(12,)))


class TestLiteralsValidation:
    def test_empty_matrix_rejected(self):
        with pytest.raises(SplSemanticError):
            MatrixLit(rows=())

    def test_ragged_matrix_rejected(self):
        with pytest.raises(SplSemanticError):
            MatrixLit(rows=((1, 2), (3,)))

    def test_empty_diagonal_rejected(self):
        with pytest.raises(SplSemanticError):
            DiagonalLit(values=())

    def test_bad_permutation_rejected(self):
        with pytest.raises(SplSemanticError):
            PermutationLit(perm=(0, 1))


class TestUnrollFlag:
    def test_with_unroll_round_trip(self):
        f = fourier(4)
        assert f.unroll is None
        assert f.with_unroll(True).unroll is True

    def test_unroll_excluded_from_equality(self):
        assert fourier(4).with_unroll(True) == fourier(4)

    def test_unroll_excluded_from_hash(self):
        assert hash(fourier(4).with_unroll(True)) == hash(fourier(4))


class TestWalk:
    def test_walk_preorder(self):
        f = compose(tensor(fourier(2), identity(2)), stride(4, 2))
        nodes = list(f.walk())
        assert nodes[0] is f
        assert fourier(2) in nodes
        assert stride(4, 2) in nodes
        assert len(nodes) == 5

    def test_str_is_spl(self):
        assert str(fourier(2)) == "(F 2)"
