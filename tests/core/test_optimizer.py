"""Unit tests for the value-numbering optimizer (Section 3.4)."""

import numpy as np
import pytest

from repro.core.compiler import CompilerOptions, SplCompiler
from repro.core.icode import (
    FConst,
    FVar,
    IExpr,
    Loop,
    Op,
    Program,
    VEC_INPUT,
    VEC_OUTPUT,
    VEC_TEMP,
    VecInfo,
    VecRef,
    iter_ops,
)
from repro.core.interpreter import run_program
from repro.core.optimizer import optimize
from tests.conftest import assert_routine_matches_matrix


def make_program(body, *, in_size=4, out_size=4, temps=()):
    program = Program(name="p", in_size=in_size, out_size=out_size,
                      datatype="real", body=body)
    program.vectors["x"] = VecInfo("x", in_size, VEC_INPUT)
    program.vectors["y"] = VecInfo("y", out_size, VEC_OUTPUT)
    for name, size in temps:
        program.vectors[name] = VecInfo(name, size, VEC_TEMP)
    return program


def x(i):
    return VecRef("x", IExpr.const(i))


def y(i):
    return VecRef("y", IExpr.const(i))


class TestConstantFolding:
    def test_add_consts(self):
        program = make_program([
            Op("+", FVar("f0"), FConst(2.0), FConst(3.0)),
            Op("=", y(0), FVar("f0")),
        ])
        optimize(program)
        assert program.body[-1].a == FConst(5.0)

    def test_folding_chains(self):
        program = make_program([
            Op("*", FVar("f0"), FConst(2.0), FConst(3.0)),
            Op("+", FVar("f1"), FVar("f0"), FConst(1.0)),
            Op("=", y(0), FVar("f1")),
        ])
        optimize(program)
        assert program.body[-1].a == FConst(7.0)

    def test_neg_const(self):
        program = make_program([
            Op("neg", FVar("f0"), FConst(2.5)),
            Op("=", y(0), FVar("f0")),
        ])
        optimize(program)
        assert program.body[-1].a == FConst(-2.5)


class TestAlgebraicIdentities:
    @pytest.mark.parametrize("op,a,b,expect_kind", [
        ("*", FConst(1.0), None, "copy"),   # 1*x = x
        ("*", None, FConst(1.0), "copy"),   # x*1 = x
        ("+", FConst(0.0), None, "copy"),   # 0+x = x
        ("+", None, FConst(0.0), "copy"),   # x+0 = x
        ("-", None, FConst(0.0), "copy"),   # x-0 = x
        ("*", None, FConst(0.0), "zero"),   # x*0 = 0
        ("*", FConst(-1.0), None, "neg"),   # -1*x = -x
        ("-", FConst(0.0), None, "neg"),    # 0-x = -x
        ("/", None, FConst(1.0), "copy"),   # x/1 = x
    ])
    def test_identity(self, op, a, b, expect_kind):
        operand_a = a if a is not None else x(0)
        operand_b = b if b is not None else x(0)
        program = make_program([
            Op(op, FVar("f0"), operand_a, operand_b),
            Op("=", y(0), FVar("f0")),
        ])
        optimize(program)
        kinds = [op_.op for op_ in iter_ops(program.body)]
        if expect_kind == "copy":
            # The identity reduces to pure copies: no arithmetic left.
            assert set(kinds) <= {"="}
            result = run_program(program, [9.0, 0.0, 0.0, 0.0])
            assert result[0] == 9.0
        elif expect_kind == "zero":
            assert program.body[-1].a == FConst(0.0)
        else:
            assert "neg" in kinds
            assert not ({"+", "-", "*", "/"} & set(kinds))

    def test_x_minus_x_is_zero(self):
        program = make_program([
            Op("-", FVar("f0"), x(1), x(1)),
            Op("=", y(0), FVar("f0")),
        ])
        optimize(program)
        assert program.body[-1].a == FConst(0.0)


class TestCopyPropagation:
    def test_copy_chain_collapses(self):
        program = make_program([
            Op("=", FVar("f0"), x(0)),
            Op("=", FVar("f1"), FVar("f0")),
            Op("=", FVar("f2"), FVar("f1")),
            Op("=", y(0), FVar("f2")),
        ])
        optimize(program)
        assert program.body == [Op("=", y(0), x(0))]

    def test_array_element_propagates_to_scalar(self):
        """Array elements participate in value numbering too."""
        program = make_program([
            Op("=", FVar("f0"), x(0)),
            Op("+", y(0), FVar("f0"), x(1)),
            Op("+", y(1), x(0), x(1)),  # same value as y(0)
        ])
        optimize(program)
        # CSE should turn the second add into a copy of the first.
        adds = [op for op in program.body if op.op == "+"]
        assert len(adds) == 1


class TestCSE:
    def test_common_subexpression_reused(self):
        program = make_program([
            Op("+", FVar("f0"), x(0), x(1)),
            Op("+", FVar("f1"), x(0), x(1)),
            Op("*", y(0), FVar("f0"), FVar("f1")),
        ])
        optimize(program)
        adds = [op for op in program.body if op.op == "+"]
        assert len(adds) == 1

    def test_commutative_matching(self):
        program = make_program([
            Op("+", FVar("f0"), x(0), x(1)),
            Op("+", FVar("f1"), x(1), x(0)),
            Op("*", y(0), FVar("f0"), FVar("f1")),
        ])
        optimize(program)
        adds = [op for op in program.body if op.op == "+"]
        assert len(adds) == 1

    def test_noncommutative_not_merged(self):
        program = make_program([
            Op("-", FVar("f0"), x(0), x(1)),
            Op("-", FVar("f1"), x(1), x(0)),
            Op("*", y(0), FVar("f0"), FVar("f1")),
        ])
        optimize(program)
        subs = [op for op in program.body if op.op == "-"]
        assert len(subs) == 2

    def test_invalidation_on_overwrite(self):
        program = make_program([
            Op("+", FVar("f0"), x(0), x(1)),
            Op("=", y(0), FVar("f0")),
            Op("+", FVar("f0"), x(2), x(3)),   # overwrite holder
            Op("+", FVar("f1"), x(0), x(1)),   # must recompute or copy y(0)
            Op("=", y(1), FVar("f1")),
            Op("=", y(2), FVar("f0")),
        ])
        optimize(program)
        result = run_program(program, [1.0, 2.0, 3.0, 4.0])
        assert result[:3] == [3.0, 3.0, 7.0]


class TestDeadCodeElimination:
    def test_unused_scalar_removed(self):
        program = make_program([
            Op("+", FVar("f0"), x(0), x(1)),
            Op("+", FVar("f1"), x(2), x(3)),  # dead
            Op("=", y(0), FVar("f0")),
        ])
        optimize(program)
        assert all(
            op.dest != FVar("f1") for op in iter_ops(program.body)
        )

    def test_overwritten_output_removed(self):
        program = make_program([
            Op("=", y(0), x(0)),
            Op("=", y(0), x(1)),
        ])
        optimize(program)
        assert len(program.body) == 1
        assert program.body[0].a == x(1)

    def test_dead_temp_array_removed(self):
        program = make_program(
            [
                Op("=", VecRef("t0", IExpr.const(0)), x(0)),  # never read
                Op("=", y(0), x(1)),
            ],
            temps=(("t0", 1),),
        )
        optimize(program)
        assert len(program.body) == 1

    def test_loop_carried_values_kept(self):
        i = IExpr.var("i0")
        program = make_program([
            Op("=", FVar("f0"), x(0)),
            Loop("i0", 4, [
                Op("+", VecRef("y", i), VecRef("x", i), FVar("f0")),
            ]),
        ])
        optimize(program)
        result = run_program(program, [1.0, 2.0, 3.0, 4.0])
        assert result == [2.0, 3.0, 4.0, 5.0]

    def test_empty_loop_removed(self):
        program = make_program([
            Loop("i0", 4, [
                Op("=", FVar("f0"), VecRef("x", IExpr.var("i0"))),  # dead
            ]),
            Op("=", y(0), x(0)),
        ])
        optimize(program)
        assert not any(isinstance(inst, Loop) for inst in program.body)


class TestLoopSafety:
    def test_values_killed_by_loop_writes(self):
        i = IExpr.var("i0")
        program = make_program([
            Op("=", FVar("f0"), x(0)),
            Loop("i0", 3, [
                Op("+", FVar("f0"), FVar("f0"), FConst(1.0)),
                Op("=", VecRef("y", i), FVar("f0")),
            ]),
            Op("=", y(3), FVar("f0")),  # must see the post-loop value
        ])
        optimize(program)
        result = run_program(program, [10.0, 0.0, 0.0, 0.0])
        assert result == [11.0, 12.0, 13.0, 13.0]

    def test_aliasing_array_writes_conservative(self):
        i = IExpr.var("i0")
        program = make_program([
            Op("=", y(0), x(0)),
            Loop("i0", 4, [
                Op("=", VecRef("y", i), VecRef("x", i)),
            ]),
            # y(0) may have been overwritten by the loop: reading it
            # afterwards must not propagate the pre-loop value.
            Op("+", y(1), y(0), FConst(0.0)),
        ])
        optimize(program)
        result = run_program(program, [5.0, 6.0, 7.0, 8.0])
        assert result[1] == 5.0  # x(0), via the loop's write of y(0)


class TestEndToEndEquivalence:
    """Optimized and unoptimized pipelines agree on real FFT formulas."""

    FORMULAS = [
        "(F 4)",
        "(compose (tensor (F 2) (I 2)) (T 4 2) (tensor (I 2) (F 2)) (L 4 2))",
        "(compose (tensor (F 4) (I 4)) (T 16 4) (tensor (I 4) (F 4)) (L 16 4))",
    ]

    @pytest.mark.parametrize("text", FORMULAS)
    @pytest.mark.parametrize("unroll", [False, True])
    def test_optimized_matches_matrix(self, text, unroll):
        compiler = SplCompiler(CompilerOptions(optimize="default",
                                               unroll=unroll))
        routine = compiler.compile_formula(text, "t", language="python")
        assert_routine_matches_matrix(routine)

    def test_optimization_reduces_flops(self):
        text = self.FORMULAS[2]
        base = SplCompiler(CompilerOptions(optimize="none", unroll=True))
        opt = SplCompiler(CompilerOptions(optimize="default", unroll=True))
        flops_base = base.compile_formula(text, "a",
                                          language="python").flop_count
        flops_opt = opt.compile_formula(text, "b",
                                        language="python").flop_count
        assert flops_opt < flops_base
