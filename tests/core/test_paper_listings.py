"""Tests pinning the concrete examples printed in the paper."""

import numpy as np
import pytest

from repro.core.compiler import CompilerOptions, SplCompiler
from repro.core.parser import parse_formula_text
from repro.formulas import dft_matrix, to_matrix
from tests.conftest import assert_routine_matches_matrix, random_complex

F4_DEFINE = (
    "(define F4 (compose (tensor (F 2) (I 2)) (T 4 2) "
    "(tensor (I 2) (F 2)) (L 4 2)))"
)


class TestSection2Factorizations:
    def test_f4_equals_its_factorization(self):
        """Equation 1 / the F4 example of Section 2.1."""
        factored = parse_formula_text(
            "(compose (tensor (F 2) (I 2)) (T 4 2) "
            "(tensor (I 2) (F 2)) (L 4 2))"
        )
        np.testing.assert_allclose(to_matrix(factored), dft_matrix(4),
                                   atol=1e-12)

    def test_f4_explicit_matrix(self):
        """The dense F4 printed at the start of Section 2.1."""
        expected = np.array([
            [1, 1, 1, 1],
            [1, -1j, -1, 1j],
            [1, -1, 1, -1],
            [1, 1j, -1, -1j],
        ])
        np.testing.assert_allclose(dft_matrix(4), expected, atol=1e-12)

    def test_fft16_program_from_section_2_2(self):
        source = f"""
        {F4_DEFINE}
        #subname fft16
        (compose (tensor F4 (I 4)) (T 16 4) (tensor (I 4) F4) (L 16 4))
        """
        compiler = SplCompiler(CompilerOptions(language="python"))
        (routine,) = compiler.compile_text(source)
        assert routine.name == "fft16"
        x = random_complex(16)
        np.testing.assert_allclose(routine.run(list(x)),
                                   dft_matrix(16) @ x, atol=1e-9)


class TestI64F2Listing:
    """Section 3.3.1: the selective-unroll example and its Fortran shape."""

    SOURCE = """
    #datatype real
    #unroll on
    (define I2F2 (tensor (I 2) (F 2)))
    #unroll off
    #subname I64F2
    (tensor (I 32) I2F2)
    """

    def compile(self):
        compiler = SplCompiler(CompilerOptions(language="fortran"))
        (routine,) = compiler.compile_text(self.SOURCE)
        return routine

    def test_structure_matches_paper(self):
        routine = self.compile()
        source = routine.source
        assert "subroutine I64F2 (y,x)" in source
        assert "implicit real*8 (f)" in source
        assert "real*8 y(128),x(128)" in source
        assert "do i0 = 0, 31" in source
        # The unrolled I2F2 body: four strided butterfly statements.
        assert "y(4*i0 + 1) = x(4*i0 + 1) + x(4*i0 + 2)" in source
        assert "y(4*i0 + 2) = x(4*i0 + 1) - x(4*i0 + 2)" in source
        assert "y(4*i0 + 3) = x(4*i0 + 3) + x(4*i0 + 4)" in source
        assert "y(4*i0 + 4) = x(4*i0 + 3) - x(4*i0 + 4)" in source

    def test_single_rolled_outer_loop(self):
        routine = self.compile()
        from repro.core.icode import Loop

        loops = [i for i in routine.program.body if isinstance(i, Loop)]
        assert len(loops) == 1
        assert loops[0].count == 32
        assert not any(isinstance(i, Loop) for i in loops[0].body)

    def test_semantics(self):
        compiler = SplCompiler(CompilerOptions(language="python"))
        (routine,) = compiler.compile_text(self.SOURCE)
        x = np.arange(128, dtype=float)
        got = np.asarray(routine.run(list(x)))
        expected = to_matrix(
            parse_formula_text("(tensor (I 64) (F 2))")
        ).real @ x
        np.testing.assert_allclose(got, expected)


class TestSection41Formulas:
    """The two F8 factorizations whose computation orders differ."""

    FORMULA_1 = (
        "(compose (tensor (F 2) (I 4)) (T 8 4) (tensor (I 2) F4) (L 8 2))"
    )
    FORMULA_2 = (
        "(compose (tensor F4 (I 2)) (T 8 2) (tensor (I 4) (F 2)) (L 8 4))"
    )

    def compile(self, text):
        compiler = SplCompiler(CompilerOptions(unroll=True,
                                               language="python"))
        compiler.compile_text(F4_DEFINE)
        return compiler.compile_formula(text, "f8", language="python")

    @pytest.mark.parametrize("text", [FORMULA_1, FORMULA_2])
    def test_both_compute_f8(self, text):
        routine = self.compile(text)
        x = random_complex(8)
        np.testing.assert_allclose(routine.run(list(x)),
                                   dft_matrix(8) @ x, atol=1e-9)

    def test_computation_orders_differ(self):
        r1 = self.compile(self.FORMULA_1)
        r2 = self.compile(self.FORMULA_2)
        assert r1.source != r2.source

    def test_straight_line(self):
        from repro.core.icode import Loop

        r1 = self.compile(self.FORMULA_1)
        assert not any(isinstance(i, Loop) for i in r1.program.body)


class TestStrideOffsetExample:
    """Section 3.5: input stride 2, output stride 4, both offsets 1."""

    def test_i2_with_strides(self):
        from repro.core.interpreter import run_program
        from repro.core.codegen import CodeGenerator

        compiler = SplCompiler()
        gen = CodeGenerator(compiler.templates)
        program = gen.generate(parse_formula_text("(I 2)"), "t", "real",
                               strided=True)
        x = [0.0, 10.0, 0.0, 20.0, 0.0]
        out = run_program(program, x, istride=2, ostride=4, iofs=1, oofs=1)
        # x(1), x(3) copied to y(1), y(5) — subscripts start from 0.
        assert out[1] == 10.0
        assert out[5] == 20.0


class TestComplexCodetypeListing:
    """The complex-arithmetic F4 of Section 4.1's listings: twiddling by
    -i appears as a (0,-1) complex constant."""

    def test_f4_complex_fortran(self):
        compiler = SplCompiler(CompilerOptions(
            unroll=True, codetype="complex", language="fortran"))
        routine = compiler.compile_formula(
            "(compose (tensor (F 2) (I 2)) (T 4 2) "
            "(tensor (I 2) (F 2)) (L 4 2))", "f4c")
        assert "(0.0d0,-1.0d0) *" in routine.source
        assert "implicit complex*16 (f)" in routine.source

    def test_swap_negate_in_real_code(self):
        """With codetype real the same multiply is a swap + negation."""
        from repro.core.icode import iter_ops

        compiler = SplCompiler(CompilerOptions(
            unroll=True, codetype="real", language="c"))
        routine = compiler.compile_formula(
            "(compose (tensor (F 2) (I 2)) (T 4 2) "
            "(tensor (I 2) (F 2)) (L 4 2))", "f4r")
        # A 4-point FFT needs no multiplications at all.
        assert all(op.op != "*" for op in iter_ops(routine.program.body))
