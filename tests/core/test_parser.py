"""Unit tests for the program-level parser (Section 3.1)."""

import pytest

from repro.core import nodes
from repro.core.errors import SplNameError, SplSyntaxError
from repro.core.parser import parse_formula_text, parse_program


class TestFormulaParsing:
    def test_parameterized_matrix(self):
        f = parse_formula_text("(F 8)")
        assert f == nodes.Param(name="F", params=(8,))

    def test_two_parameter_matrix(self):
        f = parse_formula_text("(L 16 4)")
        assert f == nodes.Param(name="L", params=(16, 4))

    def test_case_insensitive_param_names(self):
        assert parse_formula_text("(f 4)") == parse_formula_text("(F 4)")

    def test_compose_binary(self):
        f = parse_formula_text("(compose (I 2) (F 2))")
        assert isinstance(f, nodes.Compose)
        assert f.left == nodes.identity(2)
        assert f.right == nodes.fourier(2)

    def test_nary_compose_right_associates(self):
        f = parse_formula_text("(compose (I 2) (F 2) (L 4 2))")
        assert isinstance(f, nodes.Compose)
        assert isinstance(f.right, nodes.Compose)
        assert f.left == nodes.identity(2)

    def test_tensor(self):
        f = parse_formula_text("(tensor (I 2) (F 2))")
        assert isinstance(f, nodes.Tensor)

    def test_direct_sum(self):
        f = parse_formula_text("(direct-sum (I 2) (F 2))")
        assert isinstance(f, nodes.DirectSum)

    def test_matrix_literal(self):
        f = parse_formula_text("(matrix (1 0) (0 1))")
        assert f == nodes.MatrixLit(rows=((1, 0), (0, 1)))

    def test_matrix_literal_with_complex(self):
        f = parse_formula_text("(matrix (1 i) (1 -i))")
        assert f.rows == ((1, 1j), (1, -1j))

    def test_diagonal_literal(self):
        f = parse_formula_text("(diagonal (1 -1 2.5))")
        assert f == nodes.DiagonalLit(values=(1, -1, 2.5))

    def test_permutation_literal(self):
        f = parse_formula_text("(permutation (2 1 3))")
        assert f == nodes.PermutationLit(perm=(2, 1, 3))

    def test_permutation_rejects_non_bijection(self):
        with pytest.raises(Exception):
            parse_formula_text("(permutation (1 1 3))")

    def test_undefined_symbol(self):
        with pytest.raises(SplNameError):
            parse_formula_text("UndefinedThing")

    def test_float_param_rejected(self):
        with pytest.raises(SplSyntaxError):
            parse_formula_text("(F 2.5)")

    def test_unary_op_rejected(self):
        with pytest.raises(SplSyntaxError):
            parse_formula_text("(compose (I 2))")

    def test_trailing_tokens_rejected(self):
        with pytest.raises(SplSyntaxError):
            parse_formula_text("(I 2) (F 2)")


class TestRoundTrip:
    CASES = [
        "(F 8)",
        "(compose (tensor (F 2) (I 2)) (T 4 2) (tensor (I 2) (F 2)) (L 4 2))",
        "(direct-sum (I 3) (J 3))",
        "(diagonal (1 2 3))",
        "(permutation (3 1 2))",
    ]

    @pytest.mark.parametrize("text", CASES)
    def test_to_spl_round_trips(self, text):
        f = parse_formula_text(text)
        again = parse_formula_text(f.to_spl())
        assert again == f


class TestDefines:
    def test_define_and_use(self):
        program = parse_program(
            "(define F4 (compose (tensor (F 2) (I 2)) (T 4 2)"
            " (tensor (I 2) (F 2)) (L 4 2)))\n"
            "(tensor F4 (I 4))"
        )
        unit = program.units[0]
        assert isinstance(unit.formula, nodes.Tensor)
        assert isinstance(unit.formula.left, nodes.Compose)

    def test_paper_fft16_program(self):
        source = """
        (define F4 (compose (tensor (F 2) (I 2)) (T 4 2)
                            (tensor (I 2) (F 2)) (L 4 2)))
        #subname fft16
        (compose (tensor F4 (I 4)) (T 16 4) (tensor (I 4) F4) (L 16 4))
        """
        program = parse_program(source)
        assert program.units[0].name == "fft16"


class TestDirectives:
    def test_subname_applies_once(self):
        program = parse_program("#subname foo\n(I 2)\n(I 3)")
        assert program.units[0].name == "foo"
        assert program.units[1].name != "foo"

    def test_datatype_persists(self):
        program = parse_program("#datatype real\n(I 2)\n(I 3)")
        assert all(u.datatype == "real" for u in program.units)

    def test_codetype(self):
        program = parse_program("#datatype complex\n#codetype real\n(I 2)")
        assert program.units[0].codetype == "real"

    def test_language(self):
        program = parse_program("#language c\n(I 2)")
        assert program.units[0].language == "c"

    def test_default_datatype_complex(self):
        program = parse_program("(I 2)")
        assert program.units[0].datatype == "complex"

    def test_unknown_directive(self):
        with pytest.raises(SplNameError):
            parse_program("#frobnicate on\n(I 2)")

    def test_bad_directive_arg(self):
        with pytest.raises(SplSyntaxError):
            parse_program("#datatype float\n(I 2)")

    def test_unroll_flag_attaches_to_define(self):
        source = """
        #unroll on
        (define I2F2 (tensor (I 2) (F 2)))
        #unroll off
        (tensor (I 32) I2F2)
        """
        program = parse_program(source)
        formula = program.units[0].formula
        assert formula.unroll is not True  # outer formula not unrolled
        assert formula.right.unroll is True  # the define carries its flag

    def test_unroll_on_top_level_formula(self):
        program = parse_program("#unroll on\n(tensor (I 4) (F 2))")
        assert program.units[0].formula.unroll is True


class TestTemplatesInPrograms:
    def test_template_parsed_and_stored(self):
        source = """
        (template (I n_) [n_ > 0]
          (
            do $i0 = 0, n_ - 1
              $out($i0) = $in($i0)
            end
          ))
        """
        program = parse_program(source)
        assert len(program.templates) == 1
        assert program.templates[0].condition is not None

    def test_template_without_condition(self):
        source = """
        (template (F 2)
          (
            $out(0) = $in(0) + $in(1)
            $out(1) = $in(0) - $in(1)
          ))
        """
        program = parse_program(source)
        assert program.templates[0].condition is None
