"""Unit tests for pattern matching (Section 3.2)."""

import pytest

from repro.core import nodes
from repro.core.icode_parser import parse_pattern
from repro.core.lexer import TokenStream, tokenize
from repro.core.parser import parse_formula_text
from repro.core.pattern import (
    PatFormula,
    PatInt,
    PatOp,
    PatParam,
    is_formula_var,
    is_int_var,
    match,
    pattern_to_spl,
)


def pattern(text: str):
    return parse_pattern(TokenStream(tokenize(text)))


def formula(text: str):
    return parse_formula_text(text)


class TestVariableNaming:
    def test_lowercase_is_int_var(self):
        assert is_int_var("n_")
        assert is_int_var("mn_")

    def test_uppercase_is_formula_var(self):
        assert is_formula_var("A_")
        assert is_formula_var("Xyz_")

    def test_plain_names_are_neither(self):
        assert not is_int_var("n")
        assert not is_formula_var("A")


class TestParamPatterns:
    def test_matches_any_int(self):
        bindings = match(pattern("(I n_)"), formula("(I 2)"))
        assert bindings == {"n_": 2}

    def test_literal_param_must_equal(self):
        assert match(pattern("(F 2)"), formula("(F 2)")) == {}
        assert match(pattern("(F 2)"), formula("(F 4)")) is None

    def test_wrong_name_fails(self):
        assert match(pattern("(I n_)"), formula("(F 2)")) is None

    def test_wrong_arity_fails(self):
        assert match(pattern("(L mn_ n_)"), formula("(F 2)")) is None

    def test_two_params(self):
        bindings = match(pattern("(L mn_ n_)"), formula("(L 4 2)"))
        assert bindings == {"mn_": 4, "n_": 2}


class TestOperationPatterns:
    def test_compose_binds_formulas(self):
        bindings = match(pattern("(compose A_ B_)"),
                         formula("(compose (F 2) (I 3))"))
        assert bindings["A_"] == nodes.fourier(2)
        assert bindings["B_"] == nodes.identity(3)

    def test_nested_pattern(self):
        bindings = match(pattern("(tensor (I m_) B_)"),
                         formula("(tensor (I 8) (F 2))"))
        assert bindings == {"m_": 8, "B_": nodes.fourier(2)}

    def test_nested_pattern_rejects_mismatch(self):
        assert match(pattern("(tensor (I m_) B_)"),
                     formula("(tensor (F 8) (F 2))")) is None

    def test_matches_composite_subformulas(self):
        # From the paper: (compose X_ Y_) matches
        # (compose (compose A B) (tensor (I 2) C)).
        target = formula(
            "(compose (compose (F 2) (F 2)) (tensor (I 2) (F 2)))"
        )
        bindings = match(pattern("(compose X_ Y_)"), target)
        assert isinstance(bindings["X_"], nodes.Compose)
        assert isinstance(bindings["Y_"], nodes.Tensor)

    def test_direct_sum_pattern(self):
        bindings = match(pattern("(direct-sum A_ B_)"),
                         formula("(direct-sum (I 2) (J 2))"))
        assert bindings["A_"] == nodes.identity(2)

    def test_nary_pattern_right_associates(self):
        pat = pattern("(compose A_ B_ C_)")
        target = formula("(compose (F 2) (I 2) (L 4 2))")
        bindings = match(pat, target)
        assert bindings["A_"] == nodes.fourier(2)
        assert bindings["C_"] == nodes.stride(4, 2)


class TestConsistentBinding:
    def test_repeated_int_var_must_agree(self):
        pat = pattern("(tensor (I n_) (F n_))")
        assert match(pat, formula("(tensor (I 2) (F 2))")) == {"n_": 2}
        assert match(pat, formula("(tensor (I 2) (F 4))")) is None

    def test_repeated_formula_var_must_agree(self):
        pat = pattern("(compose A_ A_)")
        assert match(pat, formula("(compose (F 2) (F 2))")) is not None
        assert match(pat, formula("(compose (F 2) (I 2))")) is None


class TestRendering:
    @pytest.mark.parametrize("text", [
        "(F n_)",
        "(compose A_ B_)",
        "(tensor (I m_) B_)",
        "(direct-sum A_ B_)",
    ])
    def test_pattern_to_spl_round_trips(self, text):
        p = pattern(text)
        assert pattern(pattern_to_spl(p)) == p
