"""Unit tests for the machine-dependent peephole pass (Section 3.4)."""

from repro.core.icode import (
    FConst,
    FVar,
    IExpr,
    Loop,
    Op,
    Program,
    VEC_INPUT,
    VEC_OUTPUT,
    VecInfo,
    VecRef,
    iter_ops,
)
from repro.core.interpreter import run_program
from repro.core.peephole import avoid_unary_minus


def make(body):
    program = Program(name="p", in_size=2, out_size=2, datatype="real",
                      body=body)
    program.vectors["x"] = VecInfo("x", 2, VEC_INPUT)
    program.vectors["y"] = VecInfo("y", 2, VEC_OUTPUT)
    return program


class TestUnaryMinusRewrite:
    def test_neg_becomes_subtraction_from_zero(self):
        program = make([
            Op("neg", VecRef("y", IExpr.const(0)),
               VecRef("x", IExpr.const(0))),
        ])
        avoid_unary_minus(program)
        (op,) = program.body
        assert op.op == "-"
        assert op.a == FConst(0.0)

    def test_neg_constant_folds(self):
        program = make([Op("neg", VecRef("y", IExpr.const(0)), FConst(7.0))])
        avoid_unary_minus(program)
        (op,) = program.body
        assert op.op == "="
        assert op.a == FConst(-7.0)

    def test_inside_loops(self):
        i = IExpr.var("i0")
        program = make([
            Loop("i0", 2, [Op("neg", VecRef("y", i), VecRef("x", i))]),
        ])
        avoid_unary_minus(program)
        assert all(op.op != "neg" for op in iter_ops(program.body))

    def test_semantics_preserved(self):
        program = make([
            Op("neg", FVar("f0"), VecRef("x", IExpr.const(0))),
            Op("neg", VecRef("y", IExpr.const(0)), FVar("f0")),
            Op("neg", VecRef("y", IExpr.const(1)), FConst(3.0)),
        ])
        before = run_program(make(list(program.body)), [4.0, 0.0])
        avoid_unary_minus(program)
        after = run_program(program, [4.0, 0.0])
        assert before == after == [4.0, -3.0]

    def test_other_ops_untouched(self):
        body = [
            Op("+", VecRef("y", IExpr.const(0)),
               VecRef("x", IExpr.const(0)), VecRef("x", IExpr.const(1))),
        ]
        program = make(body)
        avoid_unary_minus(program)
        assert program.body[0].op == "+"
