"""Unit tests for the machine-dependent peephole pass (Section 3.4)."""

from repro.core.icode import (
    FConst,
    FVar,
    IExpr,
    Loop,
    Op,
    Program,
    VEC_INPUT,
    VEC_OUTPUT,
    VecInfo,
    VecRef,
    iter_ops,
)
from repro.core.interpreter import run_program
from repro.core.peephole import avoid_unary_minus


def make(body):
    program = Program(name="p", in_size=2, out_size=2, datatype="real",
                      body=body)
    program.vectors["x"] = VecInfo("x", 2, VEC_INPUT)
    program.vectors["y"] = VecInfo("y", 2, VEC_OUTPUT)
    return program


class TestUnaryMinusRewrite:
    def test_neg_becomes_subtraction_from_zero(self):
        program = make([
            Op("neg", VecRef("y", IExpr.const(0)),
               VecRef("x", IExpr.const(0))),
        ])
        avoid_unary_minus(program)
        (op,) = program.body
        assert op.op == "-"
        assert op.a == FConst(0.0)

    def test_neg_constant_folds(self):
        program = make([Op("neg", VecRef("y", IExpr.const(0)), FConst(7.0))])
        avoid_unary_minus(program)
        (op,) = program.body
        assert op.op == "="
        assert op.a == FConst(-7.0)

    def test_inside_loops(self):
        i = IExpr.var("i0")
        program = make([
            Loop("i0", 2, [Op("neg", VecRef("y", i), VecRef("x", i))]),
        ])
        avoid_unary_minus(program)
        assert all(op.op != "neg" for op in iter_ops(program.body))

    def test_semantics_preserved(self):
        program = make([
            Op("neg", FVar("f0"), VecRef("x", IExpr.const(0))),
            Op("neg", VecRef("y", IExpr.const(0)), FVar("f0")),
            Op("neg", VecRef("y", IExpr.const(1)), FConst(3.0)),
        ])
        before = run_program(make(list(program.body)), [4.0, 0.0])
        avoid_unary_minus(program)
        after = run_program(program, [4.0, 0.0])
        assert before == after == [4.0, -3.0]

    def test_other_ops_untouched(self):
        body = [
            Op("+", VecRef("y", IExpr.const(0)),
               VecRef("x", IExpr.const(0)), VecRef("x", IExpr.const(1))),
        ]
        program = make(body)
        avoid_unary_minus(program)
        assert program.body[0].op == "+"


def make_staged(dtypes=("", "", "")):
    """A 4-stage chain x -> t0 -> t1 -> t2 -> y whose t0 and t2 live
    ranges are disjoint (t0 dies at instruction 1, t2 is born at 2)."""
    from repro.core.icode import VEC_TEMP

    def stage(dst, src):
        i = IExpr.var(f"i_{dst}")
        return Loop(f"i_{dst}", 2, [Op("=", VecRef(dst, i), VecRef(src, i))])

    program = make([
        stage("t0", "x"),
        stage("t1", "t0"),
        stage("t2", "t1"),
        stage("y", "t2"),
    ])
    for name, dtype in zip(("t0", "t1", "t2"), dtypes):
        info = VecInfo(name, 2, VEC_TEMP)
        info.dtype = dtype
        program.vectors[name] = info
    return program


class TestTempArrayReuse:
    def test_disjoint_same_dtype_temps_merge(self):
        from repro.core.peephole import reuse_temp_arrays

        program = make_staged(dtypes=("real", "real", "real"))
        before = run_program(make_staged(("real", "real", "real")),
                             [3.0, -1.0])
        assert reuse_temp_arrays(program) == 1
        temps = [i.name for i in program.temp_vectors()]
        assert len(temps) == 2  # t0 and t2 share one slot
        assert run_program(program, [3.0, -1.0]) == before

    def test_differing_dtypes_refuse_to_merge(self):
        # Regression: sharing one allocation between temps of
        # different element dtypes is a reinterpretation, not a reuse.
        # Even though t0 and t2 are disjoint and equally sized, the
        # merge must be refused when their dtypes differ.
        from repro.core.peephole import reuse_temp_arrays

        program = make_staged(dtypes=("real", "real", "complex"))
        assert reuse_temp_arrays(program) == 0
        assert len(list(program.temp_vectors())) == 3

    def test_blank_dtype_matches_blank_only(self):
        from repro.core.peephole import reuse_temp_arrays

        # "" means "the program's element type": two blanks agree...
        program = make_staged(dtypes=("", "", ""))
        assert reuse_temp_arrays(program) == 1
        # ...but a blank never merges with an explicit dtype.
        program = make_staged(dtypes=("", "", "real"))
        assert reuse_temp_arrays(program) == 0
