"""Unit tests for compile-time scalar constant evaluation (Section 2.2)."""

import cmath
import math

import pytest

from repro.core.errors import SplSyntaxError
from repro.core.lexer import TokenStream, tokenize
from repro.core.scalars import (
    omega,
    parse_scalar_element,
    parse_scalar_text,
    simplify_number,
)


class TestLiterals:
    def test_integer(self):
        assert parse_scalar_text("12") == 12

    def test_float(self):
        assert parse_scalar_text("1.23") == 1.23

    def test_negative(self):
        assert parse_scalar_text("-4") == -4

    def test_complex_pair(self):
        assert parse_scalar_text("(0.7,-0.7)") == complex(0.7, -0.7)

    def test_imaginary_unit(self):
        assert parse_scalar_text("i") == 1j
        assert parse_scalar_text("-i") == -1j


class TestArithmetic:
    def test_precedence(self):
        assert parse_scalar_text("2+3*4") == 14

    def test_parens(self):
        assert parse_scalar_text("(2+3)*4") == 20

    def test_division(self):
        assert parse_scalar_text("1/4") == 0.25

    def test_paper_example(self):
        value = parse_scalar_text("(cos(2*pi/3.0),sin(2*pi/3.0))")
        expected = complex(math.cos(2 * math.pi / 3), math.sin(2 * math.pi / 3))
        assert value == pytest.approx(expected)


class TestFunctions:
    def test_sqrt(self):
        assert parse_scalar_text("sqrt(2)") == pytest.approx(math.sqrt(2))

    def test_sqrt_negative_is_complex(self):
        assert parse_scalar_text("sqrt(-4)") == pytest.approx(2j)

    def test_pi(self):
        assert parse_scalar_text("pi") == math.pi

    def test_cos_sin(self):
        assert parse_scalar_text("cos(0)") == 1
        assert parse_scalar_text("sin(0)") == 0

    def test_w_intrinsic(self):
        assert parse_scalar_text("w(4, 1)") == pytest.approx(-1j)

    def test_w_space_separated_args(self):
        assert parse_scalar_text("w(4 2)") == pytest.approx(-1)

    def test_unknown_function(self):
        with pytest.raises(SplSyntaxError):
            parse_scalar_text("frobnicate(2)")

    def test_unknown_constant(self):
        with pytest.raises(SplSyntaxError):
            parse_scalar_text("tau")


class TestOmega:
    def test_unit_root_power(self):
        assert omega(8, 2) == pytest.approx(cmath.exp(-1j * math.pi / 2))

    def test_wraps_mod_n(self):
        assert omega(4, 5) == pytest.approx(omega(4, 1))

    def test_zero_order_rejected(self):
        with pytest.raises(ZeroDivisionError):
            omega(0, 1)


class TestSimplify:
    def test_real_complex_collapses(self):
        assert simplify_number(complex(2.0, 0.0)) == 2
        assert isinstance(simplify_number(complex(2.0, 0.0)), int)

    def test_integral_float_collapses(self):
        assert simplify_number(3.0) == 3

    def test_true_complex_survives(self):
        assert simplify_number(1 + 2j) == 1 + 2j

    def test_non_integral_float_survives(self):
        assert simplify_number(2.5) == 2.5


class TestElementParsing:
    """Matrix-literal elements parse at term level (no bare +/-)."""

    def parse_row(self, text: str) -> list:
        stream = TokenStream(tokenize(text))
        values = []
        import repro.core.lexer as lx
        while stream.peek().kind not in (lx.EOF, lx.NEWLINE):
            values.append(parse_scalar_element(stream))
        return values

    def test_space_separated_negatives(self):
        assert self.parse_row("1 -1 1 -1") == [1, -1, 1, -1]

    def test_imaginary_elements(self):
        assert self.parse_row("1 -i -1 i") == [1, -1j, -1, 1j]

    def test_products_allowed(self):
        assert self.parse_row("2*3 4") == [6, 4]

    def test_sum_requires_parens(self):
        assert self.parse_row("(1+2) 4") == [3, 4]

    def test_trailing_garbage_rejected(self):
        with pytest.raises(SplSyntaxError):
            parse_scalar_text("1 2")
