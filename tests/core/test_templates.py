"""Unit tests for the template table: matching order, conditions, sizes."""

import pytest

from repro.core.compiler import SplCompiler
from repro.core.errors import SplTemplateError
from repro.core.parser import parse_formula_text, parse_program
from repro.core.templates import TemplateTable
from tests.conftest import assert_routine_matches_matrix


def startup_table() -> TemplateTable:
    return SplCompiler().templates


class TestMatching:
    def test_f2_overrides_general_f(self):
        table = startup_table()
        template, _ = table.find(parse_formula_text("(F 2)"))
        # The butterfly template has no condition; the general one does.
        assert template.condition is None

    def test_general_f_matches_others(self):
        table = startup_table()
        template, info = table.find(parse_formula_text("(F 6)"))
        assert info["ints"]["n_"] == 6

    def test_condition_filters(self):
        table = startup_table()
        # (L 4 3): 3 does not divide 4, so no template matches.
        assert table.find(parse_formula_text("(L 12 3)")) is not None

    def test_user_template_overrides_builtin(self):
        compiler = SplCompiler()
        source = """
        (template (F 2)
          (
            $out(0) = $in(0)
            $out(1) = $in(1)
          ))
        """
        compiler.parse(source)
        routine = compiler.compile_formula("(F 2)", "ident2",
                                           language="python")
        assert routine.run([1 + 0j, 2 + 0j]) == [1 + 0j, 2 + 0j]

    def test_paper_condition_example(self):
        """Pattern (L m_ n_) with [m_ == 2*n_] matches (L 4 2), not (L 4 1)."""
        compiler = SplCompiler()
        compiler.parse("""
        (template (L m_ n_) [m_ == 2*n_]
          (
            do $i0 = 0, m_ - 1
              $out($i0) = $in($i0)
            end
          ))
        """)
        template, _ = compiler.templates.find(parse_formula_text("(L 4 2)"))
        assert template.condition is not None  # the new one matched
        # (L 4 1) falls back to the built-in stride-permutation template.
        builtin, _ = compiler.templates.find(parse_formula_text("(L 4 1)"))
        assert builtin is not template


class TestSizes:
    def test_structural_sizes(self):
        table = startup_table()
        f = parse_formula_text("(compose (tensor (F 2) (I 2)) (L 4 2))")
        assert table.sizes(f) == (4, 4)

    def test_compose_mismatch_raises(self):
        table = startup_table()
        f = parse_formula_text("(compose (F 2) (F 4))")
        with pytest.raises(Exception):
            table.sizes(f)

    def test_size_inference_for_user_param(self):
        """A brand-new parameterized matrix gets its size from i-code."""
        compiler = SplCompiler()
        compiler.parse("""
        (template (COPYPAIR n_) [n_ > 0]
          (
            do $i0 = 0, n_ - 1
              $out(2 * $i0) = $in($i0)
              $out(2 * $i0 + 1) = $in($i0)
            end
          ))
        """)
        sizes = compiler.templates.sizes(parse_formula_text("(COPYPAIR 3)"))
        assert sizes == (3, 6)

    def test_size_inference_through_calls(self):
        compiler = SplCompiler()
        compiler.parse("""
        (template (DOUBLEF n_) [n_ > 0]
          (
            A_($in, $t0, 0, 0, 1, 1)
          ))
        """)
        # The template references an unbound formula variable; sizes
        # cannot be inferred and a clear error results.
        with pytest.raises(SplTemplateError):
            compiler.templates.sizes(parse_formula_text("(DOUBLEF 4)"))

    def test_unknown_param_raises(self):
        table = startup_table()
        with pytest.raises(SplTemplateError):
            table.sizes(parse_formula_text("(NOPE 3)"))


class TestUserTemplateSemantics:
    def test_loop_fusion_template_from_paper(self):
        """Section 3.2: a template recognizing a whole compose can fuse
        two tensor loops into one."""
        compiler = SplCompiler()
        compiler.parse("""
        (template (compose (tensor (I m_) A_) (tensor (I m_) B_))
                  [A_.in_size == B_.out_size]
          (
            do $i0 = 0, m_ - 1
              B_($in, $t0, $i0 * B_.in_size, 0, 1, 1)
              A_($t0, $out, 0, $i0 * A_.out_size, 1, 1)
            end
          ))
        """)
        routine = compiler.compile_formula(
            "(compose (tensor (I 8) (F 2)) (tensor (I 8) (F 2)))",
            "fused", language="python",
        )
        assert_routine_matches_matrix(routine)
        # The fused code should contain exactly one top-level loop.
        from repro.core.icode import Loop
        loops = [i for i in routine.program.body if isinstance(i, Loop)]
        assert len(loops) == 1

    def test_new_parameterized_matrix_executes(self):
        compiler = SplCompiler()
        compiler.parse("""
        (template (SCALE2 n_) [n_ > 0]
          (
            do $i0 = 0, n_ - 1
              $out($i0) = 2.0 * $in($i0)
            end
          ))
        """)
        routine = compiler.compile_formula("(SCALE2 3)", "scale2",
                                           language="python",
                                           datatype="real")
        assert routine.run([1.0, 2.0, 3.0]) == [2.0, 4.0, 6.0]
