"""Unit tests for the complex-to-real type transformation (Section 3.3.3)."""

import numpy as np
import pytest

from repro.core.codegen import CodeGenerator
from repro.core.compiler import SplCompiler
from repro.core.errors import SplSemanticError
from repro.core.icode import FConst, Op, iter_ops
from repro.core.interpreter import run_program
from repro.core.intrinsics import evaluate_intrinsics
from repro.core.parser import parse_formula_text
from repro.core.typetrans import complex_to_real
from repro.core.unroll import unroll_loops
from tests.conftest import (
    assert_program_matches_matrix,
    deinterleave,
    interleave,
    random_complex,
)
from repro.formulas import to_matrix


def lowered(text: str, *, unroll_all=True):
    compiler = SplCompiler()
    gen = CodeGenerator(compiler.templates, unroll_all=unroll_all)
    program = gen.generate(parse_formula_text(text), "test", "complex")
    unroll_loops(program)
    evaluate_intrinsics(program)
    complex_to_real(program)
    return program


class TestStructure:
    def test_element_width_doubles(self):
        program = lowered("(F 2)")
        assert program.element_width == 2
        assert program.vectors["x"].size == 4
        assert program.vectors["y"].size == 4

    def test_no_complex_constants_remain(self):
        program = lowered("(T 8 4)")
        for op in iter_ops(program.body):
            for operand in op.operands():
                if isinstance(operand, FConst):
                    assert not isinstance(operand.value, complex)

    def test_tables_interleaved(self):
        program = lowered("(T 16 4)", unroll_all=False)
        (values,) = program.tables.values()
        assert len(values) == 32  # 16 complex -> 32 reals

    def test_idempotent(self):
        program = lowered("(F 2)")
        body_before = str(program)
        complex_to_real(program)
        assert str(program) == body_before

    def test_real_datatype_untouched(self):
        compiler = SplCompiler()
        gen = CodeGenerator(compiler.templates)
        program = gen.generate(parse_formula_text("(I 2)"), "t", "real")
        complex_to_real(program)
        assert program.element_width == 1

    def test_intrinsics_must_be_evaluated_first(self):
        compiler = SplCompiler()
        gen = CodeGenerator(compiler.templates)
        program = gen.generate(parse_formula_text("(F 5)"), "t", "complex")
        with pytest.raises(SplSemanticError):
            complex_to_real(program)


class TestSemantics:
    CASES = [
        "(F 2)",
        "(F 4)",
        "(T 8 4)",
        "(L 8 2)",
        "(compose (tensor (F 2) (I 2)) (T 4 2) (tensor (I 2) (F 2)) (L 4 2))",
        "(matrix (1 i) (1 -i))",
        "(diagonal ((0,1) (0,-1)))",
    ]

    @pytest.mark.parametrize("text", CASES)
    def test_matches_dense_semantics(self, text):
        assert_program_matches_matrix(lowered(text), text)

    @pytest.mark.parametrize("text", CASES[:5])
    def test_looped_code_matches(self, text):
        assert_program_matches_matrix(lowered(text, unroll_all=False), text)


class TestMultiplyByI:
    """The paper's optimization: x*(0,-1) becomes a swap and a negation."""

    def test_mult_by_minus_i_has_no_multiplies(self):
        program = lowered("(diagonal ((0,-1) (0,-1)))")
        muls = [op for op in iter_ops(program.body) if op.op == "*"]
        assert muls == []

    def test_mult_by_i_has_no_multiplies(self):
        program = lowered("(diagonal ((0,1) (0,1)))")
        muls = [op for op in iter_ops(program.body) if op.op == "*"]
        assert muls == []

    def test_mult_by_real_uses_two_multiplies(self):
        program = lowered("(diagonal (3 1))")
        muls = [op for op in iter_ops(program.body) if op.op == "*"]
        assert len(muls) == 2  # only the first diagonal entry (3) costs

    def test_general_complex_uses_four_multiplies(self):
        program = lowered("(diagonal ((0.7,-0.7) 1))")
        muls = [op for op in iter_ops(program.body) if op.op == "*"]
        assert len(muls) == 4

    def test_pure_imaginary_uses_two_multiplies(self):
        program = lowered("(diagonal ((0,0.5) 1))")
        muls = [op for op in iter_ops(program.body) if op.op == "*"]
        assert len(muls) == 2


class TestDivision:
    def test_division_by_constant(self):
        compiler = SplCompiler()
        compiler.parse("""
        (template (HALVE n_) [n_ > 0]
          (
            do $i0 = 0, n_ - 1
              $out($i0) = $in($i0) / 2.0
            end
          ))
        """)
        routine = compiler.compile_formula("(HALVE 2)", "halve",
                                           language="python")
        assert routine.run([2 + 4j, 6 + 0j]) == [1 + 2j, 3 + 0j]
