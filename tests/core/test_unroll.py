"""Unit tests for loop unrolling and scalarization (Section 3.3.1)."""

from repro.core.codegen import CodeGenerator
from repro.core.compiler import SplCompiler
from repro.core.icode import Loop, Op, VecRef, iter_ops
from repro.core.parser import parse_formula_text
from repro.core.unroll import partially_unroll, scalarize_temps, unroll_loops
from tests.conftest import assert_program_matches_matrix


def generate(text: str, *, unroll_all=False):
    compiler = SplCompiler()
    gen = CodeGenerator(compiler.templates, unroll_all=unroll_all)
    return gen.generate(parse_formula_text(text), "test", "complex")


class TestFullUnroll:
    def test_marked_loops_disappear(self):
        program = generate("(I 4)", unroll_all=True)
        unroll_loops(program)
        assert all(isinstance(i, Op) for i in program.body)
        assert len(program.body) == 4

    def test_unmarked_loops_stay(self):
        program = generate("(I 4)")
        unroll_loops(program)
        assert any(isinstance(i, Loop) for i in program.body)

    def test_semantics_preserved(self):
        program = generate("(compose (T 8 4) (L 8 2))", unroll_all=True)
        unroll_loops(program)
        assert_program_matches_matrix(program, "(compose (T 8 4) (L 8 2))")

    def test_nested_loops_fully_expand(self):
        program = generate("(F 4)", unroll_all=True)
        unroll_loops(program)
        assert all(isinstance(i, Op) for i in program.body)
        assert_program_matches_matrix(program, "(F 4)")

    def test_indices_become_constant(self):
        program = generate("(I 4)", unroll_all=True)
        unroll_loops(program)
        for op in iter_ops(program.body):
            for item in (op.dest, *op.operands()):
                if isinstance(item, VecRef):
                    assert item.index.as_const() is not None


class TestPartialUnroll:
    def _loop(self) -> Loop:
        program = generate("(I 10)")
        return next(i for i in program.body if isinstance(i, Loop))

    def test_divisible_factor(self):
        loop = self._loop()
        result = partially_unroll(loop, 2)
        assert len(result) == 1
        assert isinstance(result[0], Loop)
        assert result[0].count == 5
        assert len(result[0].body) == 2

    def test_remainder_peeled(self):
        loop = self._loop()
        result = partially_unroll(loop, 4)
        main = result[0]
        assert main.count == 2
        # 10 = 4*2 + 2 peeled iterations
        assert len(result) == 3

    def test_factor_one_is_identity(self):
        loop = self._loop()
        assert partially_unroll(loop, 1) == [loop]

    def test_semantics_preserved(self):
        from repro.core.interpreter import run_program

        program = generate("(I 10)")
        loop_index = next(
            i for i, inst in enumerate(program.body)
            if isinstance(inst, Loop)
        )
        x = [complex(k) for k in range(10)]
        expected = run_program(program, list(x))
        program.body[loop_index:loop_index + 1] = partially_unroll(
            program.body[loop_index], 3
        )
        assert run_program(program, list(x)) == expected


class TestScalarization:
    def test_constant_indexed_temps_become_scalars(self):
        program = generate("(compose (F 2) (F 2))", unroll_all=True)
        unroll_loops(program)
        scalarize_temps(program)
        assert program.temp_vectors() == []
        for op in iter_ops(program.body):
            for item in (op.dest, *op.operands()):
                if isinstance(item, VecRef):
                    assert item.vec in ("x", "y")

    def test_io_vectors_never_scalarized(self):
        program = generate("(F 2)", unroll_all=True)
        unroll_loops(program)
        scalarize_temps(program)
        names = {item.vec for op in iter_ops(program.body)
                 for item in (op.dest, *op.operands())
                 if isinstance(item, VecRef)}
        assert names == {"x", "y"}

    def test_loop_indexed_temps_survive(self):
        program = generate("(compose (F 2) (F 2))")  # not unrolled
        unroll_loops(program)
        scalarize_temps(program)
        # The compose temp has constant indices even without unrolling
        # (size-2 straight-line butterflies), so it scalarizes; build a
        # genuinely loopy case instead:
        program2 = generate("(tensor (F 2) (F 3))")
        unroll_loops(program2)
        scalarize_temps(program2)
        assert len(program2.temp_vectors()) == 1

    def test_semantics_preserved(self):
        text = "(compose (tensor (F 2) (I 2)) (T 4 2) (tensor (I 2) (F 2)) (L 4 2))"
        program = generate(text, unroll_all=True)
        unroll_loops(program)
        scalarize_temps(program)
        assert_program_matches_matrix(program, text)

    def test_fresh_scalar_names_do_not_collide(self):
        program = generate("(compose (F 2) (F 2))", unroll_all=True)
        unroll_loops(program)
        before = set(program.scalar_names())
        scalarize_temps(program)
        after = program.scalar_names()
        assert len(after) == len(set(after))
        assert before <= set(after)
