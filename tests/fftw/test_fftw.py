"""Tests for the FFTW-substitute library (codelets, planner, executor)."""

import numpy as np
import pytest

from repro.fftw.codelets import CodeletSet, default_codelet_formula
from repro.formulas import to_matrix
from repro.formulas.transforms import dft_matrix
from tests.conftest import HAS_CC, requires_cc


class TestCodeletFormulas:
    @pytest.mark.parametrize("n", [2, 4, 8, 16, 32, 64])
    def test_formulas_compute_dft(self, n):
        np.testing.assert_allclose(to_matrix(default_codelet_formula(n)),
                                   dft_matrix(n), atol=1e-9)

    def test_codelet_set_builds(self):
        codelets = CodeletSet.build(sizes=(2, 4))
        assert codelets.sizes == (2, 4)
        assert "spl_cod2" in codelets.c_source()
        assert codelets.flops(4) > 0

    def test_codelets_are_strided(self):
        codelets = CodeletSet.build(sizes=(2,))
        assert codelets.routines[2].program.strided

    def test_codelet_python_semantics_with_strides(self):
        from repro.core.interpreter import run_program

        codelets = CodeletSet.build(sizes=(4,))
        program = codelets.routines[4].program
        rng = np.random.default_rng(5)
        x = rng.standard_normal(4) + 1j * rng.standard_normal(4)
        buf = np.zeros(16)
        buf[0::4] = x.real  # complex stride 2: re at 4k, im at 4k+1
        buf[1::4] = x.imag
        out = run_program(program, list(buf), istride=2, ostride=1)
        got = np.array(out[0:8:2]) + 1j * np.array(out[1:8:2])
        np.testing.assert_allclose(got, np.fft.fft(x), atol=1e-10)


@pytest.fixture(scope="module")
def library():
    if not HAS_CC:
        pytest.skip("no C compiler")
    from repro.fftw import FftwLibrary

    return FftwLibrary(CodeletSet.build(sizes=(2, 4, 8, 16)))


@requires_cc
class TestExecutor:
    @pytest.mark.parametrize("n", [32, 64, 128, 256])
    def test_estimate_plans_correct(self, library, n):
        from repro.fftw import Planner

        planner = Planner(library)
        plan = planner.plan_estimate(n)
        transform = library.transform(plan)
        rng = np.random.default_rng(n)
        x = rng.standard_normal(n) + 1j * rng.standard_normal(n)
        np.testing.assert_allclose(transform.apply(x), np.fft.fft(x),
                                   atol=1e-8)

    def test_codelet_leaf_plan(self, library):
        from repro.fftw import Plan

        plan = Plan.from_radices(16, (), library.codelet_sizes)
        transform = library.transform(plan)
        x = np.random.default_rng(0).standard_normal(16) * (1 + 0.5j)
        np.testing.assert_allclose(transform.apply(x), np.fft.fft(x),
                                   atol=1e-9)

    def test_deep_plan(self, library):
        from repro.fftw import Plan

        plan = Plan.from_radices(256, (4, 4), library.codelet_sizes)
        transform = library.transform(plan)
        x = np.random.default_rng(1).standard_normal(256) * (1 - 1j)
        np.testing.assert_allclose(transform.apply(x), np.fft.fft(x),
                                   atol=1e-8)

    def test_apply_rejects_wrong_length(self, library):
        from repro.fftw import Plan

        plan = Plan.from_radices(16, (), library.codelet_sizes)
        with pytest.raises(ValueError):
            library.transform(plan).apply(np.zeros(8))

    def test_apply_many_matches_apply(self, library):
        from repro.fftw import Planner

        transform = library.transform(Planner(library).plan_estimate(64))
        rng = np.random.default_rng(7)
        X = rng.standard_normal((5, 64)) + 1j * rng.standard_normal((5, 64))
        Y = transform.apply_many(X)
        assert Y.shape == (5, 64)
        np.testing.assert_allclose(Y, np.fft.fft(X, axis=1), atol=1e-8)
        for b in range(5):
            np.testing.assert_allclose(Y[b], transform.apply(X[b]),
                                       atol=1e-8)

    def test_apply_many_leaves_single_buffers_alone(self, library):
        # apply/apply_many interleave safely: the batch path keeps its
        # own workspaces (the documented re-entrancy contract).
        from repro.fftw import Planner

        transform = library.transform(Planner(library).plan_estimate(32))
        rng = np.random.default_rng(8)
        x = rng.standard_normal(32) + 1j * rng.standard_normal(32)
        y1 = transform.apply(x)
        single_x = transform._x.copy()
        X = rng.standard_normal((3, 32)) + 1j * rng.standard_normal((3, 32))
        transform.apply_many(X)
        np.testing.assert_array_equal(transform._x, single_x)
        np.testing.assert_allclose(transform.apply(x), y1, atol=0)

    def test_apply_many_reuses_workspaces(self, library):
        from repro.fftw import Planner

        transform = library.transform(Planner(library).plan_estimate(32))
        rng = np.random.default_rng(9)
        X = rng.standard_normal((4, 32)) + 1j * rng.standard_normal((4, 32))
        transform.apply_many(X)
        first = transform._batch
        transform.apply_many(X * 2)
        assert transform._batch is first  # same batch size: no realloc
        transform.apply_many(X[:2])
        assert transform._batch is not first  # resized for B=2

    def test_apply_many_rejects_wrong_shape(self, library):
        from repro.fftw import Plan

        transform = library.transform(
            Plan.from_radices(16, (), library.codelet_sizes))
        with pytest.raises(ValueError):
            transform.apply_many(np.zeros((3, 8)))
        with pytest.raises(ValueError):
            transform.apply_many(np.zeros(16))


@requires_cc
class TestPlanner:
    def test_measure_mode_returns_valid_plan(self, library):
        from repro.fftw import Planner

        planner = Planner(library, min_time=0.001)
        plan = planner.plan_measure(64)
        assert plan.n == 64
        x = np.random.default_rng(2).standard_normal(64) * (1 + 1j)
        np.testing.assert_allclose(library.transform(plan).apply(x),
                                   np.fft.fft(x), atol=1e-8)

    def test_measure_mode_caches(self, library):
        from repro.fftw import Planner

        planner = Planner(library, min_time=0.001)
        assert planner.plan_measure(64) is planner.plan_measure(64)

    def test_planning_memory_tracked(self, library):
        from repro.fftw import Planner

        planner = Planner(library, min_time=0.001)
        planner.plan_measure(64)
        assert planner.planning_bytes > 0

    def test_estimate_uses_no_planning_memory(self, library):
        from repro.fftw import Planner

        planner = Planner(library)
        planner.plan_estimate(256)
        assert planner.planning_bytes == 0

    def test_unfactorable_size_rejected(self, library):
        from repro.fftw import Planner

        planner = Planner(library)
        with pytest.raises(ValueError):
            planner.plan_estimate(24 * 5)


class _CountingLibrary:
    """Duck-typed FftwLibrary with no-op transforms (no C needed)."""

    codelet_sizes = (2, 4, 8)

    def __init__(self):
        self.timed = 0

    def codelet_flops(self, n):
        return 5 * n

    def transform(self, plan):
        outer = self

        class _Transform:
            def timer_closure(self):
                outer.timed += 1
                return lambda: None

        return _Transform()


class TestPlanningMemoryAttribution:
    def test_bytes_attributed_exactly_once(self):
        # Regression: recursive plan_measure(s) used to add child bytes
        # inside the parent's accounting window, so planning_bytes_by_n
        # attributed them to both the child and every ancestor.
        from repro.fftw import Planner

        planner = Planner(_CountingLibrary(), min_time=1e-5)
        planner.plan_measure(64)
        assert set(planner.planning_bytes_by_n) == {16, 32, 64}
        assert planner.planning_bytes == sum(
            planner.planning_bytes_by_n.values()
        )

    def test_child_bytes_independent_of_entry_point(self):
        from repro.fftw import Planner

        direct = Planner(_CountingLibrary(), min_time=1e-5)
        direct.plan_measure(16)
        nested = Planner(_CountingLibrary(), min_time=1e-5)
        nested.plan_measure(64)  # plans 16 as a grandchild
        assert (direct.planning_bytes_by_n[16]
                == nested.planning_bytes_by_n[16])


class TestPlanStructure:
    def test_radices_and_leaf(self):
        from repro.fftw import Plan

        plan = Plan.from_radices(128, (4, 4), (2, 4, 8, 16, 32, 64))
        assert plan.radices == (4, 4)
        assert plan.leaf == 8
        assert plan.work_len == 2 * 128 + 2 * 32

    def test_twiddle_layout(self):
        import cmath
        import math

        from repro.fftw import Plan

        plan = Plan.from_radices(8, (4,), (2, 4, 8))
        # Level-0 table: w_8^(i*j) at complex index i*2 + j, i<4, j<2.
        for i in range(4):
            for j in range(2):
                expected = cmath.exp(-2j * math.pi * i * j / 8)
                k = i * 2 + j
                got = complex(plan.twiddles[2 * k], plan.twiddles[2 * k + 1])
                assert abs(got - expected) < 1e-12

    def test_invalid_radix_rejected(self):
        from repro.fftw import Plan

        with pytest.raises(ValueError):
            Plan.from_radices(64, (5,), (2, 4, 8))

    def test_missing_codelet_rejected(self):
        from repro.fftw import Plan

        with pytest.raises(ValueError):
            Plan.from_radices(64, (2,), (2, 4, 8))  # leaf 32 missing

    def test_describe(self):
        from repro.fftw import Plan

        plan = Plan.from_radices(64, (4,), (2, 4, 8, 16))
        assert "r4" in plan.describe()
        assert "cod16" in plan.describe()

    def test_memory_bytes(self):
        from repro.fftw import Plan

        plan = Plan.from_radices(64, (4,), (2, 4, 8, 16))
        assert plan.memory_bytes() == plan.twiddles.nbytes + 8 * plan.work_len
