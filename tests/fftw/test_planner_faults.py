"""Fault-tolerance tests for the FFTW-style planner.

Uses duck-typed stand-in libraries (no C compiler needed) to inject
candidate plans that raise or emit NaN, and wisdom entries that are
stale or unreconstructable; the planner must skip/quarantine/evict and
still produce a working plan.
"""

import math

import numpy as np
import pytest

from repro.fftw.planner import (
    ESTIMATE_TRANSFORM,
    MEASURE_TRANSFORM,
    Plan,
    Planner,
)
from repro.perfeval.sandbox import Quarantine
from repro.wisdom.store import WisdomStore


class _Transform:
    """A correct reference transform (numpy FFT)."""

    def __init__(self, n):
        self.n = n

    def apply(self, x):
        return np.fft.fft(x)

    def timer_closure(self):
        x = np.arange(self.n, dtype=complex)
        return lambda: np.fft.fft(x)


class _NanTransform(_Transform):
    def apply(self, x):
        return np.full(self.n, np.nan, dtype=complex)


class _WrongTransform(_Transform):
    def apply(self, x):
        return np.zeros(self.n, dtype=complex)  # not the DFT


class _Library:
    """Duck-typed FftwLibrary: per-radix-chain sabotage via ``hostile``.

    ``hostile`` maps a radix chain (tuple) to a mode: ``"raise"`` makes
    ``transform()`` explode, ``"nan"``/``"wrong"`` swap in a transform
    with poisoned output.
    """

    codelet_sizes = (2, 4, 8, 16)

    def __init__(self, hostile=None):
        self.hostile = dict(hostile or {})

    def codelet_flops(self, n):
        return 5 * n

    def transform(self, plan):
        mode = self.hostile.get(plan.radices)
        if mode == "raise":
            raise RuntimeError("codelet exploded")
        if mode == "nan":
            return _NanTransform(plan.n)
        if mode == "wrong":
            return _WrongTransform(plan.n)
        return _Transform(plan.n)


def _planner(library, **kwargs):
    return Planner(library, min_time=0.0005, **kwargs)


class TestMeasureModeFaults:
    def test_hostile_candidates_skipped_and_quarantined(self):
        # n=32 over codelets (2,4,8,16) yields four single-radix
        # candidates; poison two of them, two survive.
        library = _Library(hostile={(2,): "raise", (4,): "nan"})
        quarantine = Quarantine()
        planner = _planner(library, quarantine=quarantine)
        plan = planner.plan_measure(32)
        assert plan.radices in ((8,), (16,))
        assert planner.candidates_failed == 2
        assert planner.candidates_timed == 2
        kinds = quarantine.stats()["kinds"]
        assert kinds == {"error": 1, "nan": 1}

    def test_quarantined_plan_skipped_on_next_pass(self):
        library = _Library(hostile={(2,): "raise"})
        quarantine = Quarantine()
        first = _planner(library, quarantine=quarantine)
        first.plan_measure(32)
        skips_before = quarantine.skips
        # A fresh planner (cold caches) sharing the quarantine never
        # re-runs the known-bad candidate.
        second = _planner(_Library(), quarantine=quarantine)
        plan = second.plan_measure(32)
        assert quarantine.skips > skips_before
        assert plan.radices != (2,)

    def test_all_candidates_hostile_raises(self):
        library = _Library(hostile={
            (2,): "raise", (4,): "raise", (8,): "nan", (16,): "nan",
        })
        planner = _planner(library, quarantine=Quarantine())
        with pytest.raises(ValueError, match="failed measurement"):
            planner.plan_measure(32)

    def test_healthy_planning_records_no_failures(self):
        planner = _planner(_Library(), quarantine=Quarantine())
        planner.plan_measure(32)
        assert planner.candidates_failed == 0
        assert len(planner.quarantine) == 0


class TestWisdomPlanValidation:
    def _seed_wisdom(self, tmp_path, transform, radices):
        wisdom = WisdomStore(tmp_path / "wisdom.json")
        wisdom.record(
            transform, 32, tuple(_Library.codelet_sizes),
            formula=f"radices={','.join(map(str, radices))}",
            seconds=1e-9, mflops=1e6, radices=list(radices),
        )
        return wisdom

    def test_valid_replayed_plan_skips_timing(self, tmp_path):
        wisdom = self._seed_wisdom(tmp_path, MEASURE_TRANSFORM, (8,))
        planner = _planner(_Library(), wisdom=wisdom)
        plan = planner.plan_measure(32)
        assert plan.radices == (8,)
        assert planner.candidates_timed == 0
        assert planner.plans_evicted == 0

    def test_wrong_output_plan_evicted_and_replanned(self, tmp_path):
        # The remembered chain rebuilds fine but no longer computes
        # the DFT (e.g. codelets changed underneath the store).
        wisdom = self._seed_wisdom(tmp_path, MEASURE_TRANSFORM, (8,))
        library = _Library(hostile={(8,): "wrong"})
        planner = _planner(library, wisdom=wisdom)
        planner.plan_measure(32)
        # The poisoned entry was evicted and planning re-measured from
        # scratch instead of trusting the replay.  (The re-measured
        # winner may legally be the same radix chain — only its
        # *replayed* form was invalid.)
        assert planner.plans_evicted == 1
        assert planner.candidates_timed > 0
        # The re-measured result replaced the planted entry on disk.
        fresh = WisdomStore(wisdom.path)
        key_opts = tuple(_Library.codelet_sizes)
        entry = fresh.lookup(MEASURE_TRANSFORM, 32, key_opts)
        assert entry is not None
        assert entry.seconds != 1e-9  # not the planted timing

    def test_unreconstructable_plan_evicted(self, tmp_path):
        # Radix 3 cannot be built over power-of-two codelets: the
        # rebuild raises inside validation, which must count as a
        # rejection, not an error.
        wisdom = self._seed_wisdom(tmp_path, MEASURE_TRANSFORM, (3,))
        planner = _planner(_Library(), wisdom=wisdom)
        plan = planner.plan_measure(32)
        assert plan.radices in ((2,), (4,), (8,), (16,))
        assert planner.plans_evicted == 1

    def test_estimate_mode_replay_validates_too(self, tmp_path):
        wisdom = self._seed_wisdom(tmp_path, ESTIMATE_TRANSFORM, (3,))
        planner = _planner(_Library(), wisdom=wisdom)
        plan = planner.plan_estimate(32)
        assert plan.radices != (3,)
        assert planner.plans_evicted == 1


class TestPlanValidityCheck:
    def test_valid_plan_accepted(self):
        planner = _planner(_Library())
        plan = Plan.from_radices(32, (2,), _Library.codelet_sizes)
        assert planner._plan_is_valid(plan)

    def test_wrong_and_nan_plans_rejected(self):
        plan_key_sizes = _Library.codelet_sizes
        for mode in ("wrong", "nan", "raise"):
            planner = _planner(_Library(hostile={(2,): mode}))
            plan = Plan.from_radices(32, (2,), plan_key_sizes)
            assert not planner._plan_is_valid(plan), mode

    def test_duck_typed_transform_without_apply_accepted(self):
        class Opaque:
            def transform(self, plan):
                return object()  # no .apply: nothing to check

            codelet_sizes = (2, 4, 8, 16)

        planner = _planner(Opaque())
        plan = Plan.from_radices(32, (2,), (2, 4, 8, 16))
        assert planner._plan_is_valid(plan)
