"""Every factorization rule must reproduce its transform exactly."""

import numpy as np
import pytest

from repro.core.errors import SplSemanticError
from repro.formulas import factorization as fac
from repro.formulas import to_matrix
from repro.formulas.transforms import (
    dct2_matrix,
    dct4_matrix,
    dft_matrix,
    wht_matrix,
)

SPLITS = [(2, 2), (2, 4), (4, 2), (4, 4), (2, 8), (8, 4), (3, 4), (6, 6)]


class TestBinaryRules:
    @pytest.mark.parametrize("r,s", SPLITS)
    def test_dit(self, r, s):
        np.testing.assert_allclose(to_matrix(fac.ct_dit(r, s)),
                                   dft_matrix(r * s), atol=1e-9)

    @pytest.mark.parametrize("r,s", SPLITS)
    def test_dif(self, r, s):
        np.testing.assert_allclose(to_matrix(fac.ct_dif(r, s)),
                                   dft_matrix(r * s), atol=1e-9)

    @pytest.mark.parametrize("r,s", SPLITS)
    def test_parallel(self, r, s):
        np.testing.assert_allclose(to_matrix(fac.ct_parallel(r, s)),
                                   dft_matrix(r * s), atol=1e-9)

    @pytest.mark.parametrize("r,s", SPLITS)
    def test_vector(self, r, s):
        np.testing.assert_allclose(to_matrix(fac.ct_vector(r, s)),
                                   dft_matrix(r * s), atol=1e-9)

    def test_invalid_split(self):
        with pytest.raises(SplSemanticError):
            fac.ct_dit(1, 8)

    def test_parallel_compute_stages_all_i_tensor(self):
        """Equation 8's point: every non-permutation stage is I (x) A."""
        from repro.core import nodes

        formula = fac.ct_parallel(4, 4)
        stages = []
        node = formula
        while isinstance(node, nodes.Compose):
            stages.append(node.left)
            node = node.right
        stages.append(node)
        tensors = [s for s in stages if isinstance(s, nodes.Tensor)]
        assert tensors
        assert all(isinstance(t.left, nodes.Param) and t.left.name == "I"
                   for t in tensors)


class TestEquation6:
    @pytest.mark.parametrize("m,n", [(2, 3), (3, 2), (4, 4), (2, 8)])
    def test_tensor_flip(self, m, n):
        rng = np.random.default_rng(m * 100 + n)
        a_vals = rng.integers(-3, 4, (m, m))
        b_vals = rng.integers(-3, 4, (n, n))
        from repro.core.nodes import MatrixLit

        a = MatrixLit(rows=tuple(tuple(float(v) for v in row)
                                 for row in a_vals))
        b = MatrixLit(rows=tuple(tuple(float(v) for v in row)
                                 for row in b_vals))
        flipped = fac.tensor_flip(a, b, m, n)
        np.testing.assert_allclose(to_matrix(flipped),
                                   np.kron(a_vals, b_vals), atol=1e-9)


class TestEquation10:
    CASES = [
        [2, 2],
        [2, 4],
        [4, 2],
        [2, 2, 2],
        [2, 2, 2, 2],
        [4, 4, 2],
        [2, 3, 4],
        [3, 3],
    ]

    @pytest.mark.parametrize("factors", CASES)
    def test_multi(self, factors):
        n = int(np.prod(factors))
        np.testing.assert_allclose(to_matrix(fac.ct_multi(factors)),
                                   dft_matrix(n), atol=1e-9)

    def test_single_factor_is_leaf(self):
        assert fac.ct_multi([8]).to_spl() == "(F 8)"

    def test_radix2_iterative(self):
        np.testing.assert_allclose(to_matrix(fac.ct_multi([2] * 5)),
                                   dft_matrix(32), atol=1e-9)

    def test_custom_leaf(self):
        calls = []

        def leaf(n):
            calls.append(n)
            return fac.fourier(n)

        fac.ct_multi([4, 8], leaf=leaf)
        assert sorted(calls) == [4, 8]

    def test_invalid_factors(self):
        with pytest.raises(SplSemanticError):
            fac.ct_multi([1, 8])


class TestWht:
    @pytest.mark.parametrize("exponents", [[1], [1, 1], [2, 1], [1, 2, 1],
                                           [3], [2, 3]])
    def test_wht_multi(self, exponents):
        n = 2 ** sum(exponents)
        np.testing.assert_allclose(to_matrix(fac.wht_multi(exponents)),
                                   wht_matrix(n), atol=1e-9)

    def test_invalid_exponents(self):
        with pytest.raises(SplSemanticError):
            fac.wht_multi([0, 1])


class TestDct:
    @pytest.mark.parametrize("n", [4, 8, 16, 32])
    def test_dct2_split(self, n):
        np.testing.assert_allclose(to_matrix(fac.dct2_split(n)),
                                   dct2_matrix(n), atol=1e-9)

    @pytest.mark.parametrize("n", [2, 4, 8, 16])
    def test_dct4_via_dct2(self, n):
        np.testing.assert_allclose(to_matrix(fac.dct4_via_dct2(n)),
                                   dct4_matrix(n), atol=1e-9)

    def test_dct2_split_needs_even(self):
        with pytest.raises(SplSemanticError):
            fac.dct2_split(6 + 1)

    def test_recursive_dct(self):
        from repro.generator.dct_rules import dct2_recursive

        formula = dct2_recursive(16)
        np.testing.assert_allclose(to_matrix(formula), dct2_matrix(16),
                                   atol=1e-9)
