"""Unit tests for the dense interpretation of formula ASTs."""

import numpy as np
import pytest

from repro.core.errors import SplSemanticError
from repro.core.nodes import Param
from repro.core.parser import parse_formula_text
from repro.formulas import to_matrix
from repro.formulas.transforms import dft_matrix


def mat(text: str) -> np.ndarray:
    return to_matrix(parse_formula_text(text))


class TestLeaves:
    def test_identity(self):
        np.testing.assert_array_equal(mat("(I 3)"), np.eye(3))

    def test_fourier(self):
        np.testing.assert_allclose(mat("(F 4)"), dft_matrix(4))

    def test_matrix_literal(self):
        np.testing.assert_array_equal(mat("(matrix (1 2) (3 4))"),
                                      [[1, 2], [3, 4]])

    def test_diagonal_literal(self):
        np.testing.assert_array_equal(mat("(diagonal (1 2))"),
                                      [[1, 0], [0, 2]])

    def test_permutation_literal(self):
        x = np.array([10.0, 20.0, 30.0])
        np.testing.assert_array_equal(mat("(permutation (2 3 1))") @ x,
                                      [20, 30, 10])

    def test_unknown_param(self):
        with pytest.raises(SplSemanticError):
            to_matrix(Param(name="XYZ", params=(3,)))


class TestOperators:
    def test_compose_order(self):
        """(compose A B) means A @ B: B is applied to the input first."""
        a = mat("(compose (diagonal (2 2)) (matrix (0 1) (1 0)))")
        x = np.array([1.0, 3.0])
        np.testing.assert_array_equal(a @ x, [6, 2])

    def test_tensor_is_kron(self):
        np.testing.assert_array_equal(
            mat("(tensor (matrix (1 2) (3 4)) (I 2))"),
            np.kron([[1, 2], [3, 4]], np.eye(2)),
        )

    def test_direct_sum_blocks(self):
        m = mat("(direct-sum (diagonal (2)) (diagonal (3)))")
        np.testing.assert_array_equal(m, [[2, 0], [0, 3]])

    def test_direct_sum_rectangular(self):
        m = to_matrix(parse_formula_text(
            "(direct-sum (matrix (1 2)) (I 2))"
        ))
        assert m.shape == (3, 4)


class TestTensorInterpretations:
    """Section 2.1's reading of I (x) A and A (x) I."""

    def test_i_tensor_a_block_diagonal(self):
        a = np.array([[1, 2], [3, 4]], dtype=complex)
        m = mat("(tensor (I 2) (matrix (1 2) (3 4)))")
        np.testing.assert_array_equal(m[:2, :2], a)
        np.testing.assert_array_equal(m[2:, 2:], a)
        np.testing.assert_array_equal(m[:2, 2:], np.zeros((2, 2)))

    def test_a_tensor_i_strided(self):
        m = mat("(tensor (matrix (1 2) (3 4)) (I 2))")
        x = np.array([1.0, 10.0, 2.0, 20.0])
        # Acts on the stride-2 subvectors (1,2) and (10,20).
        np.testing.assert_array_equal(m @ x, [5, 50, 11, 110])
