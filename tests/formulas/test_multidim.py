"""Tests for multidimensional and derived transforms."""

import numpy as np
import pytest

from repro.core.compiler import CompilerOptions, SplCompiler
from repro.core.errors import SplSemanticError
from repro.formulas import to_matrix
from repro.formulas.multidim import (
    cyclic_convolution_with_taps,
    dft2d,
    dft3d,
    index_reversal,
    inverse_dft,
)
from tests.conftest import random_complex


class TestDft2d:
    @pytest.mark.parametrize("m,n", [(2, 2), (4, 4), (2, 8), (4, 3)])
    def test_matches_numpy_fft2(self, m, n):
        formula = dft2d(m, n)
        x = random_complex(m * n).reshape(m, n)
        got = (to_matrix(formula) @ x.reshape(-1)).reshape(m, n)
        np.testing.assert_allclose(got, np.fft.fft2(x), atol=1e-9)

    def test_compiles_and_runs(self):
        compiler = SplCompiler(CompilerOptions(language="python"))
        routine = compiler.compile_formula(dft2d(4, 4), "dft2d_4x4")
        x = random_complex(16)
        got = np.asarray(routine.run(list(x))).reshape(4, 4)
        np.testing.assert_allclose(got, np.fft.fft2(x.reshape(4, 4)),
                                   atol=1e-9)

    def test_factored_leaves(self):
        from repro.formulas.factorization import ct_dit

        formula = dft2d(4, 4, leaf=lambda k: ct_dit(2, 2))
        x = random_complex(16).reshape(4, 4)
        got = (to_matrix(formula) @ x.reshape(-1)).reshape(4, 4)
        np.testing.assert_allclose(got, np.fft.fft2(x), atol=1e-9)

    def test_invalid_sizes(self):
        with pytest.raises(SplSemanticError):
            dft2d(0, 4)


class TestDft3d:
    def test_matches_numpy_fftn(self):
        formula = dft3d(2, 4, 2)
        x = random_complex(16).reshape(2, 4, 2)
        got = (to_matrix(formula) @ x.reshape(-1)).reshape(2, 4, 2)
        np.testing.assert_allclose(got, np.fft.fftn(x), atol=1e-9)


class TestInverseDft:
    @pytest.mark.parametrize("n", [1, 2, 3, 4, 8, 12])
    def test_matches_numpy_ifft(self, n):
        formula = inverse_dft(n)
        x = random_complex(n)
        np.testing.assert_allclose(to_matrix(formula) @ x, np.fft.ifft(x),
                                   atol=1e-9)

    @pytest.mark.parametrize("n", [2, 4, 8])
    def test_inverse_composes_to_identity(self, n):
        from repro.core.nodes import compose, fourier

        round_trip = compose(inverse_dft(n), fourier(n))
        np.testing.assert_allclose(to_matrix(round_trip), np.eye(n),
                                   atol=1e-9)

    def test_index_reversal_structure(self):
        p = index_reversal(4)
        x = np.array([10.0, 11.0, 12.0, 13.0])
        np.testing.assert_array_equal(to_matrix(p).real @ x,
                                      [10, 13, 12, 11])

    def test_compiles(self):
        compiler = SplCompiler(CompilerOptions(language="python"))
        routine = compiler.compile_formula(inverse_dft(8), "ifft8")
        x = random_complex(8)
        np.testing.assert_allclose(np.asarray(routine.run(list(x))),
                                   np.fft.ifft(x), atol=1e-9)


class TestCyclicConvolution:
    def test_convolution_theorem(self):
        n = 8
        rng = np.random.default_rng(0)
        taps = rng.standard_normal(n)
        spectrum = np.fft.fft(taps)
        formula = cyclic_convolution_with_taps(n, spectrum)
        x = random_complex(n)
        expected = np.fft.ifft(np.fft.fft(x) * spectrum)
        np.testing.assert_allclose(to_matrix(formula) @ x, expected,
                                   atol=1e-9)

    def test_compiled_convolution(self):
        n = 16
        rng = np.random.default_rng(1)
        taps = np.zeros(n)
        taps[:3] = [0.5, 0.3, 0.2]
        spectrum = np.fft.fft(taps)
        compiler = SplCompiler(CompilerOptions(language="python"))
        routine = compiler.compile_formula(
            cyclic_convolution_with_taps(n, spectrum), "conv16"
        )
        x = rng.standard_normal(n) + 0j
        got = np.asarray(routine.run(list(x)))
        expected = np.fft.ifft(np.fft.fft(x) * spectrum)
        np.testing.assert_allclose(got, expected, atol=1e-9)

    def test_wrong_spectrum_length(self):
        with pytest.raises(SplSemanticError):
            cyclic_convolution_with_taps(8, [1.0] * 4)
