"""Tests for the non-Cooley-Tukey FFT formulas (Good-Thomas, Rader,
Bluestein)."""

import numpy as np
import pytest

from repro.core.compiler import CompilerOptions, SplCompiler
from repro.core.errors import SplSemanticError
from repro.formulas import to_matrix
from repro.formulas.prime import (
    _primitive_root,
    bluestein,
    good_thomas,
    rader,
)
from repro.formulas.transforms import dft_matrix
from tests.conftest import random_complex


class TestGoodThomas:
    @pytest.mark.parametrize("m,k", [(3, 4), (4, 3), (3, 5), (5, 8),
                                     (4, 9), (7, 8)])
    def test_matches_dft(self, m, k):
        np.testing.assert_allclose(to_matrix(good_thomas(m, k)),
                                   dft_matrix(m * k), atol=1e-9)

    def test_rejects_non_coprime(self):
        with pytest.raises(SplSemanticError):
            good_thomas(4, 6)

    def test_no_twiddles_in_formula(self):
        """The prime-factor algorithm's point: no T matrices appear."""
        from repro.core.nodes import Param

        formula = good_thomas(3, 4)
        assert not any(
            isinstance(node, Param) and node.name == "T"
            for node in formula.walk()
        )

    def test_compiles_and_runs(self):
        compiler = SplCompiler(CompilerOptions(language="python"))
        routine = compiler.compile_formula(good_thomas(3, 4), "gt12")
        x = random_complex(12)
        np.testing.assert_allclose(np.asarray(routine.run(list(x))),
                                   np.fft.fft(x), atol=1e-9)

    def test_factored_leaves(self):
        from repro.formulas.factorization import ct_dit
        from repro.core.nodes import fourier

        formula = good_thomas(
            4, 9, leaf=lambda n: ct_dit(2, 2) if n == 4 else fourier(n)
        )
        np.testing.assert_allclose(to_matrix(formula), dft_matrix(36),
                                   atol=1e-9)


class TestRader:
    @pytest.mark.parametrize("p", [3, 5, 7, 11, 13, 17, 19])
    def test_matches_dft(self, p):
        np.testing.assert_allclose(to_matrix(rader(p)), dft_matrix(p),
                                   atol=1e-8)

    def test_rejects_composite(self):
        with pytest.raises(SplSemanticError):
            rader(9)

    def test_rejects_two(self):
        with pytest.raises(SplSemanticError):
            rader(2)

    def test_primitive_roots(self):
        assert _primitive_root(5) == 2
        assert _primitive_root(7) == 3
        for p in (11, 13, 17):
            g = _primitive_root(p)
            assert sorted(pow(g, t, p) for t in range(p - 1)) == \
                list(range(1, p))

    def test_compiles_and_runs(self):
        compiler = SplCompiler(CompilerOptions(language="python"))
        routine = compiler.compile_formula(rader(7), "rader7")
        x = random_complex(7)
        np.testing.assert_allclose(np.asarray(routine.run(list(x))),
                                   np.fft.fft(x), atol=1e-8)

    def test_inner_fft_is_fast_for_mersenne_like(self):
        """p=17: the convolution is a power-of-two FFT of size 16,
        which the CT machinery factors."""
        from repro.formulas.factorization import ct_multi
        from repro.core.nodes import fourier

        formula = rader(
            17, leaf=lambda n: ct_multi([2] * 4) if n == 16 else fourier(n)
        )
        np.testing.assert_allclose(to_matrix(formula), dft_matrix(17),
                                   atol=1e-8)


class TestBluestein:
    @pytest.mark.parametrize("n", [1, 2, 3, 5, 7, 11, 12, 15])
    def test_matches_dft(self, n):
        np.testing.assert_allclose(to_matrix(bluestein(n)), dft_matrix(n),
                                   atol=1e-8)

    def test_padded_size_is_power_of_two(self):
        formula = bluestein(5)
        from repro.core.nodes import Param

        fs = [node.params[0] for node in formula.walk()
              if isinstance(node, Param) and node.name == "F"]
        assert fs and all(m & (m - 1) == 0 for m in fs)

    def test_explicit_padding(self):
        np.testing.assert_allclose(to_matrix(bluestein(5, padded=16)),
                                   dft_matrix(5), atol=1e-8)

    def test_too_small_padding_rejected(self):
        with pytest.raises(SplSemanticError):
            bluestein(5, padded=8)

    def test_compiles_and_runs(self):
        compiler = SplCompiler(CompilerOptions(language="python"))
        routine = compiler.compile_formula(bluestein(6), "blu6")
        x = random_complex(6)
        np.testing.assert_allclose(np.asarray(routine.run(list(x))),
                                   np.fft.fft(x), atol=1e-8)
