"""Unit tests for the dense transform definitions (Section 2.1)."""

import math

import numpy as np
import pytest

from repro.core.errors import SplSemanticError
from repro.formulas.transforms import (
    dct2_matrix,
    dct4_matrix,
    dft_matrix,
    reversal_matrix,
    stride_perm_matrix,
    twiddle_matrix,
    wht_matrix,
)


class TestDft:
    def test_matches_numpy(self):
        for n in (1, 2, 3, 4, 8, 12):
            x = np.random.default_rng(n).standard_normal(n) * (1 + 1j)
            np.testing.assert_allclose(dft_matrix(n) @ x, np.fft.fft(x),
                                       atol=1e-10)

    def test_symmetric(self):
        f = dft_matrix(8)
        np.testing.assert_allclose(f, f.T)

    def test_unitary_up_to_scale(self):
        f = dft_matrix(16)
        np.testing.assert_allclose(f @ f.conj().T, 16 * np.eye(16),
                                   atol=1e-10)

    def test_invalid_size(self):
        with pytest.raises(SplSemanticError):
            dft_matrix(0)


class TestStridePermutation:
    def test_is_permutation(self):
        p = stride_perm_matrix(12, 3)
        assert (p.sum(axis=0) == 1).all()
        assert (p.sum(axis=1) == 1).all()

    def test_gathers_with_stride(self):
        p = stride_perm_matrix(8, 4)
        x = np.arange(8.0)
        np.testing.assert_array_equal(p @ x,
                                      [0, 4, 1, 5, 2, 6, 3, 7])

    def test_l_4_2(self):
        x = np.arange(4.0)
        np.testing.assert_array_equal(stride_perm_matrix(4, 2) @ x,
                                      [0, 2, 1, 3])

    def test_inverse_is_opposite_stride(self):
        n, s = 24, 4
        p = stride_perm_matrix(n, s)
        q = stride_perm_matrix(n, n // s)
        np.testing.assert_allclose(p @ q, np.eye(n), atol=0)

    def test_transpose_is_inverse(self):
        p = stride_perm_matrix(12, 3)
        np.testing.assert_allclose(p @ p.T, np.eye(12), atol=0)

    def test_must_divide(self):
        with pytest.raises(SplSemanticError):
            stride_perm_matrix(10, 3)


class TestTwiddle:
    def test_t_4_2_values(self):
        t = np.diag(twiddle_matrix(4, 2))
        np.testing.assert_allclose(t, [1, 1, 1, -1j], atol=1e-12)

    def test_diagonal(self):
        t = twiddle_matrix(16, 4)
        np.testing.assert_allclose(t, np.diag(np.diag(t)))

    def test_unit_modulus(self):
        t = np.diag(twiddle_matrix(32, 8))
        np.testing.assert_allclose(np.abs(t), 1.0)


class TestCooleyTukeyIdentity:
    """The fundamental check: Equation 5 as dense matrices."""

    @pytest.mark.parametrize("r,s", [(2, 2), (2, 4), (4, 2), (4, 4),
                                     (2, 8), (8, 8), (3, 4), (6, 2)])
    def test_dit(self, r, s):
        n = r * s
        lhs = dft_matrix(n)
        rhs = (
            np.kron(dft_matrix(r), np.eye(s))
            @ twiddle_matrix(n, s)
            @ np.kron(np.eye(r), dft_matrix(s))
            @ stride_perm_matrix(n, r)
        )
        np.testing.assert_allclose(lhs, rhs, atol=1e-10)


class TestWht:
    def test_wht2_is_f2(self):
        np.testing.assert_array_equal(wht_matrix(2), [[1, 1], [1, -1]])

    def test_entries_pm1(self):
        w = wht_matrix(16)
        assert set(np.unique(w)) == {-1.0, 1.0}

    def test_orthogonal(self):
        w = wht_matrix(8)
        np.testing.assert_allclose(w @ w.T, 8 * np.eye(8))

    def test_power_of_two_required(self):
        with pytest.raises(SplSemanticError):
            wht_matrix(6)


class TestDct:
    def test_dct2_2_matches_paper(self):
        """DCTII_2 = diag(1, 1/sqrt(2)) . F_2 (Section 2.1)."""
        expected = np.diag([1, 1 / math.sqrt(2)]) @ np.array(
            [[1, 1], [1, -1]]
        )
        np.testing.assert_allclose(dct2_matrix(2), expected, atol=1e-12)

    def test_dct2_first_row_ones(self):
        np.testing.assert_allclose(dct2_matrix(8)[0], np.ones(8))

    def test_dct2_matches_scipy_convention(self):
        import scipy.fft

        x = np.random.default_rng(3).standard_normal(8)
        # scipy's unnormalized DCT-II is 2x ours.
        np.testing.assert_allclose(2 * dct2_matrix(8) @ x,
                                   scipy.fft.dct(x, type=2, norm=None),
                                   atol=1e-10)

    def test_dct4_matches_scipy_convention(self):
        import scipy.fft

        x = np.random.default_rng(4).standard_normal(8)
        np.testing.assert_allclose(2 * dct4_matrix(8) @ x,
                                   scipy.fft.dct(x, type=4, norm=None),
                                   atol=1e-10)

    def test_dct4_symmetric(self):
        c4 = dct4_matrix(16)
        np.testing.assert_allclose(c4, c4.T, atol=1e-12)


class TestReversal:
    def test_reverses(self):
        x = np.arange(5.0)
        np.testing.assert_array_equal(reversal_matrix(5) @ x, x[::-1])

    def test_involution(self):
        j = reversal_matrix(6)
        np.testing.assert_array_equal(j @ j, np.eye(6))
