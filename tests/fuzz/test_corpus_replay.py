"""Replay every corpus reproducer against the differential oracle.

Each ``.spl`` file under ``tests/fuzz/corpus/`` carries a
``; fuzz: expect=...`` header naming the outcome it pins down:
``ok`` files must compile and match the dense semantics, ``rejected``
files must fail with a *typed* SplError — never a crash, a hang, or a
``RecursionError``.  Adding a minimized fuzz finding here makes it a
permanent regression test.
"""

from pathlib import Path

import pytest

from repro.core.cli import main as cli_main
from repro.fuzz.harness import read_corpus_expectation
from repro.fuzz.oracle import STATUS_CRASH, check_source

CORPUS = Path(__file__).parent / "corpus"
ENTRIES = sorted(CORPUS.glob("*.spl"))


def test_corpus_is_populated():
    assert len(ENTRIES) >= 5


@pytest.mark.parametrize("path", ENTRIES, ids=lambda p: p.stem)
def test_corpus_entry(path):
    expect = read_corpus_expectation(path)
    result = check_source(path.read_text())
    assert result.status != STATUS_CRASH, result.detail
    assert result.status == expect, (
        f"{path.name}: expected {expect}, got {result.status} "
        f"({result.detail})"
    )


@pytest.mark.parametrize("path", ENTRIES, ids=lambda p: p.stem)
def test_corpus_entry_through_cli(path, capsys):
    """The CLI must exit 0/1 on corpus files — never a traceback."""
    expect = read_corpus_expectation(path)
    status = cli_main([str(path), "--language", "python"])
    captured = capsys.readouterr()
    assert "Traceback" not in captured.err
    if expect == "ok":
        assert status == 0, captured.err
    else:
        assert status == 1, captured.err
        assert "error SPL-E" in captured.err
