"""The CI fuzz gate: a fixed-seed differential pass must come up clean.

200 generated programs (valid, boundary and mutated-invalid) run
through the full differential oracle — Python backend, NumPy backend
and i-code interpreter against the dense-matrix semantics.  Any crash,
divergence, or wrongly-rejected valid program fails the build.
"""

from repro.fuzz import run_fuzz
from repro.fuzz.harness import minimize_source
from repro.fuzz.oracle import STATUS_REJECTED, check_source

SMOKE_COUNT = 200
SMOKE_SEED = 1


def test_fixed_seed_smoke():
    report = run_fuzz(SMOKE_COUNT, SMOKE_SEED, minimize=False)
    assert report.crashes == 0, report.describe()
    assert report.divergences == 0, report.describe()
    assert report.valid_rejected == 0, report.describe()
    # The mix must exercise both paths: plenty of programs compile and
    # match, plenty are cleanly rejected.
    assert report.ok > SMOKE_COUNT // 4
    assert report.rejected > SMOKE_COUNT // 20


def test_report_is_deterministic():
    first = run_fuzz(40, 9, minimize=False)
    second = run_fuzz(40, 9, minimize=False)
    assert (first.ok, first.rejected) == (second.ok, second.rejected)


def test_corpus_writer_roundtrip(tmp_path):
    from repro.fuzz.harness import (
        read_corpus_expectation,
        write_corpus_entry,
    )

    path = write_corpus_entry(tmp_path, "(compose (F 2) (F 3))\n",
                              expect=STATUS_REJECTED, kind="invalid",
                              seed=1, detail="size mismatch")
    assert path.suffix == ".spl"
    assert read_corpus_expectation(path) == STATUS_REJECTED
    text = path.read_text()
    assert "; fuzz: kind=invalid" in text
    assert "(compose (F 2) (F 3))" in text
    # The written file itself replays to the expected verdict.
    assert check_source(text).status == STATUS_REJECTED


def test_minimizer_shrinks_reproducer():
    source = "; a comment\n#subname keepme\n(compose (F 2) (F 3))\n"

    def still_fails(text: str) -> bool:
        return check_source(text).status == STATUS_REJECTED

    minimized = minimize_source(source, still_fails)
    assert "(compose (F 2) (F 3))" in minimized
    assert "; a comment" not in minimized
    assert still_fails(minimized)
