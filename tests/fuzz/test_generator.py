"""The generator must be deterministic and cover all three kinds."""

import random

from repro.core.compiler import SplCompiler
from repro.fuzz.generator import (
    KIND_BOUNDARY,
    KIND_INVALID,
    KIND_VALID,
    MAX_SIZE,
    generate_cases,
    random_formula,
)


def test_same_seed_same_cases():
    first = generate_cases(50, seed=7)
    second = generate_cases(50, seed=7)
    assert [(c.kind, c.source) for c in first] == [
        (c.kind, c.source) for c in second
    ]


def test_different_seeds_differ():
    a = [c.source for c in generate_cases(50, seed=1)]
    b = [c.source for c in generate_cases(50, seed=2)]
    assert a != b


def test_all_kinds_appear():
    kinds = {c.kind for c in generate_cases(100, seed=0)}
    assert kinds == {KIND_VALID, KIND_BOUNDARY, KIND_INVALID}


def test_valid_cases_parse_and_roundtrip():
    compiler = SplCompiler()
    for case in generate_cases(80, seed=3):
        if case.kind != KIND_VALID:
            continue
        program = compiler.parse(case.source)
        assert program.units, case.source


def test_random_formula_is_square_and_bounded():
    rng = random.Random(11)
    for _ in range(50):
        n = rng.randint(1, MAX_SIZE)
        formula = random_formula(rng, n)
        from repro.core.nodes import default_param_sizes

        in_size, out_size = formula.size(default_param_sizes)
        assert (in_size, out_size) == (n, n)
