"""No legitimate program may regress under the default limits.

The resource-governance layer exists to stop hostile inputs; the
paper's own example programs — the F4 factorization, the FFT16
program of Section 2.2, the selectively-unrolled I64F2 listing of
Section 3.3.1, and the Cooley-Tukey FFT family — must all still
compile under ``DEFAULT_LIMITS`` and match the dense oracle.
"""

import numpy as np
import pytest

from repro.core.compiler import CompilerOptions, SplCompiler
from repro.core.limits import DEFAULT_LIMITS
from repro.fuzz.oracle import STATUS_OK, check_source

SEED_PROGRAMS = {
    "f4-factorization": """
        #subname fft4
        (compose (tensor (F 2) (I 2)) (T 4 2) (tensor (I 2) (F 2)) (L 4 2))
    """,
    "fft16-section-2-2": """
        (define F4 (compose (tensor (F 2) (I 2)) (T 4 2)
                            (tensor (I 2) (F 2)) (L 4 2)))
        #subname fft16
        (compose (tensor F4 (I 4)) (T 16 4) (tensor (I 4) F4) (L 16 4))
    """,
    "i64f2-selective-unroll": """
        #unroll on
        (define I2F2 (tensor (I 2) (F 2)))
        #unroll off
        #subname I64F2
        (tensor (I 32) I2F2)
    """,
    "wht8": "(WHT 8)",
    "direct-sum-mix": "(direct-sum (F 4) (compose (J 3) (J 3)))",
}


@pytest.mark.parametrize("name", sorted(SEED_PROGRAMS),
                         ids=sorted(SEED_PROGRAMS))
def test_seed_program_passes_oracle_under_default_limits(name):
    result = check_source(SEED_PROGRAMS[name], limits=DEFAULT_LIMITS)
    assert result.status == STATUS_OK, f"{name}: {result.detail}"
    assert result.compiled >= 1


def test_fft_family_compiles_under_default_limits():
    """``(F n)`` at practical sizes, via the start-up CT templates."""
    from repro.formulas import dft_matrix

    compiler = SplCompiler(CompilerOptions(language="python"))
    for n in (2, 4, 8, 16, 32, 64):
        routine = compiler.compile_formula(f"(F {n})",
                                           limits=DEFAULT_LIMITS)
        x = np.exp(2j * np.pi * np.arange(n) / max(n, 1))
        np.testing.assert_allclose(routine.run(list(x)), dft_matrix(n) @ x,
                                   atol=1e-8)
