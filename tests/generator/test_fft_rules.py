"""Unit tests for the FFT formula generator."""

import numpy as np
import pytest

from repro.core.nodes import fourier
from repro.formulas import to_matrix
from repro.formulas.transforms import dft_matrix
from repro.generator.fft_rules import (
    all_binary_splits,
    count_factorizations,
    enumerate_ct_formulas,
    ordered_factorizations,
)


class TestOrderedFactorizations:
    def test_eight(self):
        found = sorted(tuple(f) for f in ordered_factorizations(8))
        assert found == [(2, 2, 2), (2, 4), (4, 2)]

    def test_count_is_power_related(self):
        # For n = 2^k the count of ordered factorizations is 2^(k-1) - 1
        # proper multi-factor ones plus the leaf.
        assert count_factorizations(16) == 8
        assert count_factorizations(32) == 16

    def test_prime_has_only_leaf(self):
        assert list(ordered_factorizations(7)) == []

    def test_products_correct(self):
        for factors in ordered_factorizations(24):
            assert int(np.prod(factors)) == 24
            assert all(f >= 2 for f in factors)


class TestBinarySplits:
    def test_sixteen(self):
        assert list(all_binary_splits(16)) == [(2, 8), (4, 4), (8, 2)]

    def test_prime(self):
        assert list(all_binary_splits(13)) == []


class TestEnumeration:
    def test_leaf_always_first(self):
        formulas = enumerate_ct_formulas(8)
        assert formulas[0] == fourier(8)

    def test_all_candidates_compute_dft(self):
        for formula in enumerate_ct_formulas(8):
            np.testing.assert_allclose(to_matrix(formula), dft_matrix(8),
                                       atol=1e-9)

    def test_no_duplicates(self):
        formulas = enumerate_ct_formulas(16)
        texts = [f.to_spl() for f in formulas]
        assert len(texts) == len(set(texts))

    def test_limit_respected(self):
        formulas = enumerate_ct_formulas(32, limit=5)
        assert len(formulas) == 5

    def test_binary_rules_add_candidates(self):
        multi_only = enumerate_ct_formulas(16, rules=("multi",))
        widened = enumerate_ct_formulas(
            16, rules=("multi", "dif", "parallel", "vector")
        )
        assert len(widened) > len(multi_only)

    def test_widened_candidates_still_correct(self):
        for formula in enumerate_ct_formulas(
            8, rules=("dif", "parallel", "vector")
        ):
            np.testing.assert_allclose(to_matrix(formula), dft_matrix(8),
                                       atol=1e-9)

    def test_enough_formulas_for_figure2(self):
        """Figure 2 needs 45 SPL formulas for FFT N=32; the recursive
        breakdown-tree space has 51."""
        from repro.generator.fft_rules import enumerate_breakdown_trees

        trees = enumerate_breakdown_trees(32)
        assert len(trees) == 51
        texts = [t.to_spl() for t in trees]
        assert len(set(texts)) == 51

    def test_breakdown_trees_all_correct(self):
        from repro.generator.fft_rules import enumerate_breakdown_trees

        for tree in enumerate_breakdown_trees(16):
            np.testing.assert_allclose(to_matrix(tree), dft_matrix(16),
                                       atol=1e-9)

    def test_custom_leaf_substitution(self):
        best4 = enumerate_ct_formulas(4)[1]  # a factored F4

        def leaf(m):
            return best4 if m == 4 else fourier(m)

        formulas = enumerate_ct_formulas(8, leaf=leaf)
        rendered = " ".join(f.to_spl() for f in formulas)
        assert best4.to_spl() in rendered
