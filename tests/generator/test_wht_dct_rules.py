"""Unit tests for the WHT and DCT generator rules."""

import numpy as np
import pytest

from repro.formulas import to_matrix
from repro.formulas.transforms import dct2_matrix, dct4_matrix, wht_matrix
from repro.generator.dct_rules import dct2_recursive, dct4_recursive
from repro.generator.wht_rules import compositions, enumerate_wht_formulas


class TestCompositions:
    def test_three(self):
        found = sorted(tuple(c) for c in compositions(3))
        assert found == [(1, 1, 1), (1, 2), (2, 1), (3,)]

    def test_count_is_power_of_two(self):
        assert sum(1 for _ in compositions(5)) == 16

    def test_max_part(self):
        assert all(max(c) <= 2 for c in compositions(4, max_part=2))


class TestWhtEnumeration:
    def test_all_formulas_correct(self):
        for formula in enumerate_wht_formulas(16):
            np.testing.assert_allclose(to_matrix(formula), wht_matrix(16),
                                       atol=1e-9)

    def test_limit(self):
        assert len(enumerate_wht_formulas(32, limit=3)) == 3

    def test_non_power_rejected(self):
        with pytest.raises(ValueError):
            enumerate_wht_formulas(12)


class TestDctRecursion:
    @pytest.mark.parametrize("n", [2, 4, 8, 16, 32])
    def test_dct2_recursive_correct(self, n):
        np.testing.assert_allclose(to_matrix(dct2_recursive(n)),
                                   dct2_matrix(n), atol=1e-8)

    @pytest.mark.parametrize("n", [2, 4, 8])
    def test_dct4_recursive_correct(self, n):
        np.testing.assert_allclose(to_matrix(dct4_recursive(n)),
                                   dct4_matrix(n), atol=1e-8)

    def test_recursion_bottoms_out(self):
        from repro.core import nodes

        formula = dct2_recursive(8, min_size=4)
        leaves = [
            node for node in formula.walk()
            if isinstance(node, nodes.Param) and node.name.startswith("DCT")
        ]
        assert leaves
        assert all(node.params[0] <= 4 for node in leaves)

    def test_compiles_and_runs(self):
        from repro.core.compiler import CompilerOptions, SplCompiler

        compiler = SplCompiler(CompilerOptions(datatype="real",
                                               language="python"))
        formula = dct2_recursive(8)
        routine = compiler.compile_formula(formula, "dct8")
        x = np.random.default_rng(0).standard_normal(8)
        np.testing.assert_allclose(routine.run(list(x)),
                                   dct2_matrix(8) @ x, atol=1e-9)
