"""End-to-end integration: every pipeline configuration against the oracle.

For each formula in a broad corpus and each combination of optimization
level, unrolling, and backend, the generated code must compute
``to_matrix(formula) @ x``.
"""

import numpy as np
import pytest

from repro.core.compiler import CompilerOptions, SplCompiler
from repro.core.parser import parse_formula_text
from repro.formulas import to_matrix
from repro.formulas.factorization import (
    ct_dif,
    ct_dit,
    ct_multi,
    ct_parallel,
    ct_vector,
    dct2_split,
    wht_multi,
)
from repro.generator.dct_rules import dct2_recursive
from repro.perfeval.runner import build_executable
from tests.conftest import random_complex, requires_cc

CORPUS = [
    "(F 2)",
    "(F 4)",
    "(F 6)",
    "(F 8)",
    "(L 16 4)",
    "(T 16 2)",
    "(WHT 8)",
    "(tensor (F 2) (F 2))",
    "(compose (tensor (F 2) (I 2)) (T 4 2) (tensor (I 2) (F 2)) (L 4 2))",
    "(direct-sum (F 2) (compose (F 2) (diagonal (1 -1))))",
    "(compose (permutation (2 1 4 3)) (tensor (I 2) (F 2)))",
]

FACTORED = [
    ct_dit(2, 8),
    ct_dif(4, 4),
    ct_parallel(2, 4),
    ct_vector(4, 2),
    ct_multi([2, 2, 2, 2]),
    wht_multi([1, 2, 1]),
    dct2_split(8),
    dct2_recursive(16),
]


def check(formula, options: CompilerOptions, language: str) -> None:
    compiler = SplCompiler(options)
    if isinstance(formula, str):
        formula = parse_formula_text(formula)
    routine = compiler.compile_formula(formula, "e2e", language=language)
    matrix = to_matrix(formula)
    x = random_complex(matrix.shape[1])
    got = np.asarray(routine.run(list(x)))
    np.testing.assert_allclose(got, matrix @ x, atol=1e-8)


class TestPythonBackendMatrix:
    @pytest.mark.parametrize("text", CORPUS)
    @pytest.mark.parametrize("optimize", ["none", "scalars", "default"])
    def test_opt_levels(self, text, optimize):
        check(text, CompilerOptions(optimize=optimize), "python")

    @pytest.mark.parametrize("text", CORPUS)
    def test_unrolled(self, text):
        check(text, CompilerOptions(unroll=True), "python")

    @pytest.mark.parametrize("text", CORPUS)
    def test_lowered_to_real(self, text):
        check(text, CompilerOptions(codetype="real", unroll=True), "python")

    @pytest.mark.parametrize("index", range(len(FACTORED)))
    def test_factored_formulas(self, index):
        check(FACTORED[index],
              CompilerOptions(optimize="default", unroll=True), "python")

    @pytest.mark.parametrize("text", CORPUS)
    def test_peephole(self, text):
        check(text, CompilerOptions(peephole=True, unroll=True), "python")

    @pytest.mark.parametrize("text", CORPUS[:6])
    def test_threshold(self, text):
        check(text, CompilerOptions(unroll_threshold=8), "python")


@requires_cc
class TestCompiledCMatrix:
    @pytest.mark.parametrize("text", CORPUS)
    def test_compiled_c(self, text):
        compiler = SplCompiler(CompilerOptions(unroll=True))
        formula = parse_formula_text(text)
        routine = compiler.compile_formula(formula, "e2ec", language="c")
        executable = build_executable(routine)
        matrix = to_matrix(formula)
        x = random_complex(matrix.shape[1])
        np.testing.assert_allclose(executable.apply(x), matrix @ x,
                                   atol=1e-8)

    @pytest.mark.parametrize("index", range(len(FACTORED)))
    def test_compiled_c_factored(self, index):
        compiler = SplCompiler(CompilerOptions(optimize="default"))
        formula = FACTORED[index]
        routine = compiler.compile_formula(formula, "e2ecf", language="c")
        executable = build_executable(routine)
        matrix = to_matrix(formula)
        x = random_complex(matrix.shape[1])
        np.testing.assert_allclose(executable.apply(x), matrix @ x,
                                   atol=1e-8)


class TestLargerSizes:
    @pytest.mark.parametrize("n", [32, 64, 128])
    def test_recursive_fft_python(self, n):
        factors = []
        m = n
        while m > 1:
            factors.append(2)
            m //= 2
        formula = ct_multi(factors)
        compiler = SplCompiler(CompilerOptions(codetype="real"))
        routine = compiler.compile_formula(formula, f"fft{n}",
                                           language="python")
        x = random_complex(n)
        np.testing.assert_allclose(np.asarray(routine.run(list(x))),
                                   np.fft.fft(x), atol=1e-8)

    def test_interpreter_backend_agreement(self):
        """The i-code interpreter and the Python backend see the same
        program and must agree exactly (bitwise)."""
        from repro.core.interpreter import run_program
        from tests.conftest import interleave

        compiler = SplCompiler(CompilerOptions(codetype="real"))
        routine = compiler.compile_formula(ct_dit(4, 8), "ag",
                                           language="python")
        x = random_complex(32)
        buf = interleave(x)
        via_interp = run_program(routine.program, list(buf))
        y = [0.0] * len(via_interp)
        routine.callable()(y, list(buf))
        assert y == via_interp
