"""Stress tests for the circuit-breaker race in ExecutableRoutine.

``_degrade`` used to mutate breaker state and splice the backend
callables with no lock while ``apply``/``apply_many`` ran on many
threads.  Two callers faulting concurrently would *both* walk the
fallback chain: the first consumed the fallback, the second found the
chain empty and re-raised — an exception escaping even though a
healthy fallback existed — and the failure list recorded a double
trip.  These tests fault many threads simultaneously (a barrier inside
the sabotaged callable guarantees the overlap) and assert exactly one
trip, zero escaped exceptions, and correct results for every caller.
"""

import threading

import numpy as np
import pytest

from repro.core.compiler import CompilerOptions, SplCompiler
from repro.perfeval.runner import build_executable

N_THREADS = 8
ROUNDS = 5


def _build(n=8, tag=""):
    compiler = SplCompiler(CompilerOptions(codetype="real"))
    routine = compiler.compile_formula(f"(F {n})", f"race{n}{tag}",
                                       language="numpy")
    executable = build_executable(routine, prefer="numpy")
    assert executable.backend == "numpy"
    assert executable.fallback_chain == ("python",)
    return executable


def _sabotage_with_barrier(executable, parties):
    """Every current-backend callable blocks until ``parties`` callers
    are inside it, then all raise together — the widest possible
    degradation race window."""
    barrier = threading.Barrier(parties)

    def explode(*args, **kwargs):
        barrier.wait(timeout=30)
        raise OSError("simultaneous native fault")

    executable.raw_call = explode
    executable.batch_call = explode
    return barrier


class TestConcurrentDegradation:
    def test_concurrent_apply_faults_trip_breaker_once(self):
        for round_no in range(ROUNDS):
            executable = _build(tag=f"a{round_no}")
            _sabotage_with_barrier(executable, N_THREADS)
            x = (np.arange(8) + 1j * np.arange(8))
            expected = np.fft.fft(x)
            results = [None] * N_THREADS
            errors = [None] * N_THREADS

            def worker(i):
                try:
                    results[i] = executable.apply(x)
                except Exception as exc:  # noqa: BLE001 - the bug
                    errors[i] = exc

            threads = [threading.Thread(target=worker, args=(i,))
                       for i in range(N_THREADS)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(60)
                assert not t.is_alive()
            # No caller may see an exception: a fallback existed.
            assert errors == [None] * N_THREADS, (
                f"escaped exceptions: {[e for e in errors if e]}"
            )
            for result in results:
                np.testing.assert_allclose(result, expected, atol=1e-9)
            # Exactly one trip for the faulted tier, not one per caller.
            assert executable.backend == "python"
            trips = [f for f in executable.backend_failures
                     if f.backend == "numpy"]
            assert len(trips) == 1, (
                f"breaker double-tripped: {executable.backend_failures}"
            )
            assert len(executable.backend_failures) == 1
            assert executable.fallback_chain == ()

    def test_concurrent_apply_many_faults_trip_breaker_once(self):
        for round_no in range(ROUNDS):
            executable = _build(tag=f"m{round_no}")
            _sabotage_with_barrier(executable, N_THREADS)
            rng = np.random.default_rng(round_no)
            X = (rng.standard_normal((4, 8))
                 + 1j * rng.standard_normal((4, 8)))
            expected = np.fft.fft(X, axis=1)
            errors = [None] * N_THREADS
            results = [None] * N_THREADS

            def worker(i):
                try:
                    results[i] = executable.apply_many(X)
                except Exception as exc:  # noqa: BLE001 - the bug
                    errors[i] = exc

            threads = [threading.Thread(target=worker, args=(i,))
                       for i in range(N_THREADS)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(60)
                assert not t.is_alive()
            assert errors == [None] * N_THREADS
            for result in results:
                np.testing.assert_allclose(result, expected, atol=1e-9)
            assert executable.backend == "python"
            assert len(executable.backend_failures) == 1

    def test_exhausted_chain_still_raises_exactly_once_per_caller(self):
        """When *every* tier is broken the original error must still
        surface to each caller (no silent swallowing by the lost-race
        path)."""
        executable = _build(tag="x")
        barrier = _sabotage_with_barrier(executable, N_THREADS)

        # Break the python tier too, so the chain exhausts.
        import repro.perfeval.runner as runner_mod

        def broken_build(routine):
            raise RuntimeError("python tier unavailable")

        original = runner_mod._build_python
        runner_mod._build_python = broken_build
        try:
            x = np.arange(8) + 1j * np.arange(8)
            outcomes = [None] * N_THREADS

            def worker(i):
                try:
                    executable.apply(x)
                    outcomes[i] = "ok"
                except OSError:
                    outcomes[i] = "fault"
                except Exception:  # noqa: BLE001
                    outcomes[i] = "other"

            threads = [threading.Thread(target=worker, args=(i,))
                       for i in range(N_THREADS)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(60)
                assert not t.is_alive()
        finally:
            runner_mod._build_python = original
        # Everyone faulted (the chain was exhausted)...
        assert all(kind == "fault" for kind in outcomes), outcomes
        # ...but the *trip* was still recorded only once per tier.
        numpy_trips = [f for f in executable.backend_failures
                       if f.backend == "numpy" and f.op == "apply"]
        assert len(numpy_trips) == 1
