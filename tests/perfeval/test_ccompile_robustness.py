"""Robustness tests for the host-compiler wrapper.

Covers the compile-subprocess timeout, stderr capture in compile
errors, per-session caching of failed ``-fopenmp`` probes, and the
atomic publish of compiled shared objects.
"""

import os

import pytest

from repro.perfeval import ccompile
from repro.perfeval.ccompile import (
    CCompileError,
    compile_shared_object,
    compile_timeout,
    default_build_dir,
    openmp_probe_error,
)
from tests.conftest import requires_cc

requires_posix = pytest.mark.skipif(
    os.name != "posix", reason="uses /bin/sh fake compilers"
)


def fake_cc(tmp_path, body, name="cc"):
    """A shell script standing in for the host compiler."""
    script = tmp_path / name
    script.write_text("#!/bin/sh\n" + body)
    script.chmod(0o755)
    return str(script)


class TestCompileTimeout:
    def test_default_and_env_override(self, monkeypatch):
        monkeypatch.delenv("SPL_CC_TIMEOUT", raising=False)
        assert compile_timeout() == 120.0
        monkeypatch.setenv("SPL_CC_TIMEOUT", "7.5")
        assert compile_timeout() == 7.5

    def test_bad_values_fall_back_to_default(self, monkeypatch):
        for bad in ("banana", "-3", "0"):
            monkeypatch.setenv("SPL_CC_TIMEOUT", bad)
            assert compile_timeout() == 120.0

    @requires_posix
    def test_wedged_compiler_raises_ccompile_error(self, tmp_path,
                                                   monkeypatch):
        wedged = fake_cc(tmp_path, "sleep 30\n")
        monkeypatch.setattr(ccompile, "_find_compiler", lambda: wedged)
        monkeypatch.setenv("SPL_CC_TIMEOUT", "0.2")
        with pytest.raises(CCompileError, match="timed out"):
            compile_shared_object(
                "void t_timeout(double *y, const double *x) { y[0]=x[0]; }",
                build_dir=tmp_path,
            )
        # No half-written artifact was published or left behind.
        assert not list(tmp_path.glob("*.so"))


class TestStderrCapture:
    @requires_cc
    def test_compile_error_carries_compiler_stderr(self, tmp_path):
        with pytest.raises(CCompileError) as excinfo:
            compile_shared_object("void broken( {{{", build_dir=tmp_path)
        text = str(excinfo.value)
        assert "error" in text.lower()  # the compiler's own diagnostic
        assert "--- source ---" in text  # and the numbered source dump

    @requires_cc
    def test_failed_compile_publishes_nothing(self, tmp_path):
        with pytest.raises(CCompileError):
            compile_shared_object("void broken2( {{{", build_dir=tmp_path)
        assert not list(tmp_path.glob("*.so"))


class TestOpenmpProbeCache:
    @requires_posix
    def test_failed_probe_runs_once_per_session(self, tmp_path):
        counter = tmp_path / "invocations"
        broken = fake_cc(
            tmp_path,
            f'echo run >> "{counter}"\n'
            "echo 'fatal error: omp.h: No such file' >&2\n"
            "exit 1\n",
            name="broken-cc",
        )
        assert ccompile._probe_openmp(broken, ()) is False
        assert ccompile._probe_openmp(broken, ()) is False
        # lru_cache: the failing probe subprocess ran exactly once.
        assert counter.read_text().count("run") == 1
        # ... and its stderr is kept for diagnostics.
        assert "omp.h" in ccompile._PROBE_ERRORS[(broken, ())]

    @requires_posix
    def test_probe_error_surfaced(self, tmp_path, monkeypatch):
        broken = fake_cc(
            tmp_path,
            "echo 'unrecognized option -fopenmp' >&2\nexit 1\n",
            name="noomp-cc",
        )
        monkeypatch.setattr(ccompile, "_find_compiler", lambda: broken)
        assert openmp_probe_error() is not None
        assert "fopenmp" in openmp_probe_error()

    def test_probe_error_without_compiler(self, monkeypatch):
        monkeypatch.setattr(ccompile, "_find_compiler", lambda: None)
        assert "no C compiler" in openmp_probe_error()


@requires_cc
class TestAtomicPublish:
    def test_cache_hit_skips_recompile(self, tmp_path):
        source = "void t_atomic(double *y, const double *x) { y[0]=x[0]; }"
        first = compile_shared_object(source, build_dir=tmp_path)
        mtime = first.stat().st_mtime_ns
        second = compile_shared_object(source, build_dir=tmp_path)
        assert second == first
        assert second.stat().st_mtime_ns == mtime

    def test_no_temp_files_left_behind(self, tmp_path):
        compile_shared_object(
            "void t_clean(double *y, const double *x) { y[0]=x[0]; }",
            build_dir=tmp_path,
        )
        assert not list(tmp_path.glob("*.tmp.so"))

    def test_default_build_dir_has_no_stale_temps(self):
        # The suite compiles hundreds of candidates; none may strand a
        # mid-compile temp in the shared cache directory.
        ours = [p for p in default_build_dir().glob("*.tmp.so")
                if f".{os.getpid()}." in p.name]
        assert ours == []
