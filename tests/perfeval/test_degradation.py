"""Tests for the per-backend circuit breaker in ExecutableRoutine.

A backend whose call raises at runtime must trip its breaker and the
call must transparently retry down the ``c > numpy > python`` chain —
the caller sees a correct (slower) answer, never an exception, until
the last backend fails too.
"""

import numpy as np
import pytest

from repro.core.compiler import CompilerOptions, SplCompiler
from repro.perfeval.runner import build_executable
from tests.conftest import requires_cc


def _build(n=8, prefer="numpy"):
    compiler = SplCompiler(CompilerOptions(codetype="real"))
    routine = compiler.compile_formula(f"(F {n})", f"deg{n}{prefer[0]}",
                                       language="c")
    return build_executable(routine, prefer=prefer)


def _sabotage(executable, *, message="native fault"):
    """Replace every current-backend callable with a raiser."""

    def explode(*args, **kwargs):
        raise OSError(message)

    executable.raw_call = explode
    if executable.batch_fn is not None:
        executable.batch_fn = explode
    if executable.batch_omp_fn is not None:
        executable.batch_omp_fn = explode
    if executable.batch_call is not None:
        executable.batch_call = explode


class TestDegradation:
    def test_apply_degrades_to_python_and_stays_correct(self):
        executable = _build(prefer="numpy")
        assert executable.backend == "numpy"
        assert executable.fallback_chain == ("python",)
        _sabotage(executable)
        x = np.arange(8) + 1j * np.arange(8)
        y = executable.apply(x)
        np.testing.assert_allclose(y, np.fft.fft(x), atol=1e-9)
        assert executable.backend == "python"
        assert executable.degraded
        assert executable.fallback_chain == ()

    def test_apply_many_degrades_and_stays_correct(self):
        executable = _build(prefer="numpy")
        _sabotage(executable)
        X = (np.random.default_rng(2).standard_normal((5, 8))
             + 1j * np.random.default_rng(3).standard_normal((5, 8)))
        Y = executable.apply_many(X)
        np.testing.assert_allclose(Y, np.fft.fft(X, axis=1), atol=1e-9)
        assert executable.backend == "python"

    def test_failure_recorded_in_stats(self):
        executable = _build(prefer="numpy")
        _sabotage(executable, message="marshalling fault")
        executable.apply(np.zeros(8, dtype=complex))
        stats = executable.stats()
        assert stats["degraded"] is True
        assert stats["backend"] == "python"
        assert stats["fallbacks_left"] == ()
        assert len(stats["failures"]) == 1
        failure = stats["failures"][0]
        assert failure["backend"] == "numpy"
        assert failure["op"] == "apply"
        assert "marshalling fault" in failure["error"]

    def test_exhausted_chain_reraises(self):
        executable = _build(prefer="python")
        assert executable.fallback_chain == ()
        _sabotage(executable, message="last tier down")
        with pytest.raises(OSError, match="last tier down"):
            executable.apply(np.zeros(8, dtype=complex))
        assert executable.degraded  # the trip was still recorded

    def test_held_references_degrade_together(self):
        # The breaker splices the fallback into the *same* object, so
        # a reference captured before the fault keeps working.
        executable = _build(prefer="numpy")
        held = executable
        _sabotage(executable)
        executable.apply(np.zeros(8, dtype=complex))
        x = np.arange(8, dtype=complex)
        np.testing.assert_allclose(held.apply(x), np.fft.fft(x),
                                   atol=1e-9)
        assert held.backend == "python"

    def test_healthy_executable_reports_clean_stats(self):
        executable = _build(prefer="numpy")
        x = np.arange(8, dtype=complex)
        executable.apply(x)
        stats = executable.stats()
        assert stats["degraded"] is False
        assert stats["failures"] == []


@requires_cc
class TestNativeDegradation:
    def test_c_backend_degrades_to_numpy(self):
        executable = _build(prefer="c")
        assert executable.backend == "c"
        assert executable.fallback_chain == ("numpy", "python")
        _sabotage(executable, message="so unloadable")
        x = np.arange(8) + 1j * np.ones(8)
        np.testing.assert_allclose(executable.apply(x), np.fft.fft(x),
                                   atol=1e-9)
        assert executable.backend == "numpy"
        assert executable.fallback_chain == ("python",)
        # A second fault walks one further down the chain.
        _sabotage(executable, message="numpy fault")
        np.testing.assert_allclose(executable.apply(x), np.fft.fft(x),
                                   atol=1e-9)
        assert executable.backend == "python"
        trips = [f["backend"] for f in executable.stats()["failures"]]
        assert trips == ["c", "numpy"]

    def test_c_batch_path_degrades_mid_batch(self):
        executable = _build(prefer="c")
        _sabotage(executable, message="batch driver fault")
        X = (np.random.default_rng(4).standard_normal((6, 8))
             + 1j * np.random.default_rng(5).standard_normal((6, 8)))
        Y = executable.apply_many(X)
        np.testing.assert_allclose(Y, np.fft.fft(X, axis=1), atol=1e-9)
        assert executable.backend in ("numpy", "python")
