"""Unit and integration tests for the in-process JIT backend tier:
eligibility gating (``can_jit``), the ``SPL_JIT`` escape hatch, the
``cjit`` preference chain in ``build_executable``, and the background
promotion to the gcc-optimized tier."""

import numpy as np
import pytest

from repro.core.compiler import CompilerOptions, SplCompiler
from repro.perfeval import jit
from repro.perfeval.ccompile import have_c_compiler
from repro.perfeval.runner import (
    BackendFailure,
    _upgrade_in_background,
    build_executable,
)

needs_jit = pytest.mark.skipif(
    not jit.jit_supported(),
    reason="in-process JIT unsupported on this host",
)
needs_cc = pytest.mark.skipif(
    not have_c_compiler(), reason="no C compiler on PATH",
)


def _codelet_routine(formula="(F 4)", language="cjit"):
    compiler = SplCompiler(CompilerOptions(codetype="real", unroll=True))
    return compiler.compile_formula(formula, "tj", language=language)


def _looped_routine(language="cjit"):
    compiler = SplCompiler(CompilerOptions(codetype="real"))
    return compiler.compile_formula("(tensor (I 8) (F 4))", "tjl",
                                    language=language)


class TestEligibility:
    def test_spl_jit_zero_disables(self, monkeypatch):
        monkeypatch.setenv("SPL_JIT", "0")
        assert not jit.jit_supported()

    def test_codelet_is_jittable(self):
        assert jit.can_jit(_codelet_routine().program)

    def test_looped_program_rejected(self):
        assert not jit.can_jit(_looped_routine().program)

    def test_strided_program_rejected(self):
        compiler = SplCompiler(CompilerOptions(codetype="real",
                                               unroll=True))
        routine = compiler.compile_formula("(F 4)", "tjs", language="c",
                                           strided=True)
        assert not jit.can_jit(routine.program)

    def test_statement_cap_rejects(self, monkeypatch):
        monkeypatch.setattr(jit, "MAX_JIT_STATEMENTS", 3)
        assert not jit.can_jit(_codelet_routine().program)

    def test_compile_jit_raises_on_ineligible(self):
        with pytest.raises(jit.JitError):
            jit.compile_jit(_looped_routine().program)


@needs_jit
class TestBuildExecutable:
    def test_cjit_backend_selected(self, monkeypatch):
        monkeypatch.setenv("SPL_JIT_UPGRADE", "0")
        executable = build_executable(_codelet_routine(), prefer="cjit")
        assert executable.backend == "cjit"
        x = np.random.default_rng(1).standard_normal(4) \
            + 1j * np.random.default_rng(2).standard_normal(4)
        np.testing.assert_allclose(executable.apply(x), np.fft.fft(x),
                                   atol=1e-10)

    def test_degradation_chain_skips_c(self, monkeypatch):
        # A native fault in the JIT tier must not degrade onto another
        # native build: the chain below cjit is numpy/python only.
        monkeypatch.setenv("SPL_JIT_UPGRADE", "0")
        executable = build_executable(_codelet_routine(), prefer="cjit")
        assert "c" not in executable.fallback_chain
        assert "cjit" not in executable.fallback_chain

    def test_spl_jit_zero_falls_through(self, monkeypatch):
        monkeypatch.setenv("SPL_JIT", "0")
        executable = build_executable(_codelet_routine(), prefer="cjit")
        assert executable.backend != "cjit"

    def test_looped_program_falls_through(self, monkeypatch):
        monkeypatch.setenv("SPL_JIT_UPGRADE", "0")
        executable = build_executable(_looped_routine(), prefer="cjit")
        assert executable.backend != "cjit"

    @needs_cc
    def test_background_promotion_to_c(self, monkeypatch):
        monkeypatch.setenv("SPL_JIT_UPGRADE", "0")
        routine = _codelet_routine()
        executable = build_executable(routine, prefer="cjit")
        assert executable.backend == "cjit"
        thread = _upgrade_in_background(executable, routine, ())
        thread.join(timeout=120)
        assert not thread.is_alive()
        assert executable.backend == "c"
        assert executable.stats()["promotions"] == ["cjit->c"]
        x = np.random.default_rng(3).standard_normal(4) \
            + 1j * np.random.default_rng(4).standard_normal(4)
        np.testing.assert_allclose(executable.apply(x), np.fft.fft(x),
                                   atol=1e-10)

    def test_promotion_refused_after_breaker_trip(self, monkeypatch):
        monkeypatch.setenv("SPL_JIT_UPGRADE", "0")
        routine = _codelet_routine()
        executable = build_executable(routine, prefer="cjit")
        executable.backend_failures.append(BackendFailure(
            backend="cjit", op="call", error="synthetic fault"))
        other = build_executable(routine, prefer="numpy")
        assert not executable.promote(other)
        assert executable.backend == "cjit"
        assert executable.stats()["promotions"] == []


@needs_jit
class TestJitRoutineLifetime:
    def test_fn_outlives_routine_object(self):
        # The ctypes entries keep the RWX mapping alive via _keepalive;
        # calling fn after the JitRoutine reference is dropped must not
        # fault.
        import ctypes
        import gc

        jitted = jit.compile_jit(_codelet_routine().program)
        fn = jitted.fn
        del jitted
        gc.collect()
        dp = ctypes.POINTER(ctypes.c_double)
        x = np.arange(8.0)
        y = np.zeros(8)
        fn(y.ctypes.data_as(dp), x.ctypes.data_as(dp))
        ref = np.fft.fft(x[0::2] + 1j * x[1::2])
        np.testing.assert_allclose(y[0::2] + 1j * y[1::2], ref,
                                   atol=1e-10)
