"""Parallel execution: thread-safety, sharding, OpenMP, determinism.

The contract under test: one :class:`ExecutableRoutine` may be used
from any number of threads concurrently (scratch is per-thread), and
``apply_many(X, threads=N)`` is bit-identical to ``threads=1`` for
every backend, batch size and thread count — parallelism never changes
results, only wall-time.
"""

import threading

import numpy as np
import pytest

from repro.core.compiler import CompilerOptions, SplCompiler
from repro.perfeval.ccompile import have_openmp
from repro.perfeval.runner import build_executable
from tests.conftest import requires_cc

requires_openmp = pytest.mark.skipif(
    not have_openmp(), reason="toolchain lacks OpenMP"
)


def _fft_executable(n=8, prefer="python", name=None):
    compiler = SplCompiler(CompilerOptions(codetype="real"))
    routine = compiler.compile_formula(
        f"(F {n})", name or f"par{n}{prefer[0]}", language=prefer)
    return build_executable(routine, prefer=prefer)


def _real_executable(prefer="python"):
    """An element-width-1 (datatype real) routine: F2 x F2 x F2."""
    compiler = SplCompiler(CompilerOptions(codetype="real"))
    routine = compiler.compile_formula(
        "(tensor (F 2) (tensor (F 2) (F 2)))", f"parw{prefer[0]}",
        language=prefer, datatype="real")
    return build_executable(routine, prefer=prefer)


def _complex_batch(rows, n, seed=0):
    rng = np.random.default_rng(seed)
    return (rng.standard_normal((rows, n))
            + 1j * rng.standard_normal((rows, n)))


_BACKENDS = ["python", "numpy",
              pytest.param("c", marks=requires_cc)]


class TestConcurrentCallers:
    """The stress tests that corrupted results before scratch became
    per-thread (one shared buffer, many writers)."""

    @pytest.mark.parametrize("prefer", _BACKENDS)
    def test_concurrent_apply_is_uncorrupted(self, prefer):
        executable = _fft_executable(prefer=prefer)
        X = _complex_batch(8, 8, seed=1)
        expected = [executable.apply(x) for x in X]
        errors = []
        start = threading.Barrier(8)

        def hammer(i):
            try:
                start.wait()
                for _ in range(200):
                    got = executable.apply(X[i])
                    if not np.array_equal(got, expected[i]):
                        raise AssertionError(
                            f"thread {i}: corrupted result")
            except Exception as exc:  # noqa: BLE001 — collected
                errors.append(exc)

        threads = [threading.Thread(target=hammer, args=(i,))
                   for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors, errors[0]

    @pytest.mark.parametrize("prefer", _BACKENDS)
    def test_concurrent_apply_many_is_uncorrupted(self, prefer):
        executable = _fft_executable(prefer=prefer)
        batches = [_complex_batch(5, 8, seed=i) for i in range(4)]
        expected = [executable.apply_many(B) for B in batches]
        errors = []
        start = threading.Barrier(4)

        def hammer(i):
            try:
                start.wait()
                for _ in range(50):
                    got = executable.apply_many(batches[i])
                    if not np.array_equal(got, expected[i]):
                        raise AssertionError(
                            f"thread {i}: corrupted batch")
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=hammer, args=(i,))
                   for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors, errors[0]

    def test_scratch_is_per_thread(self):
        executable = _fft_executable()
        executable.apply(np.zeros(8, dtype=complex))
        main_pair = executable._buffers()
        other = {}

        def grab():
            executable.apply(np.zeros(8, dtype=complex))
            other["pair"] = executable._buffers()

        t = threading.Thread(target=grab)
        t.start()
        t.join()
        assert other["pair"][0] is not main_pair[0]


class TestParallelDeterminism:
    """threads=N must be bit-identical to threads=1, not just close."""

    @pytest.mark.parametrize("prefer", _BACKENDS)
    @pytest.mark.parametrize("threads", [2, 4])
    def test_complex_fft_bit_identical(self, prefer, threads):
        executable = _fft_executable(n=16, prefer=prefer)
        X = _complex_batch(256, 16, seed=2)
        serial = executable.apply_many(X, threads=1)
        parallel = executable.apply_many(X, threads=threads)
        np.testing.assert_array_equal(serial, parallel)

    @pytest.mark.parametrize("prefer", _BACKENDS)
    @pytest.mark.parametrize("threads", [2, 4])
    def test_real_transform_bit_identical(self, prefer, threads):
        executable = _real_executable(prefer=prefer)
        rng = np.random.default_rng(4)
        X = rng.standard_normal((512, 8))
        serial = executable.apply_many(X, threads=1)
        parallel = executable.apply_many(X, threads=threads)
        np.testing.assert_array_equal(serial, parallel)

    @pytest.mark.parametrize("prefer", _BACKENDS)
    def test_threads_zero_means_per_cpu(self, prefer):
        executable = _fft_executable(n=16, prefer=prefer)
        X = _complex_batch(64, 16, seed=5)
        np.testing.assert_array_equal(
            executable.apply_many(X, threads=1),
            executable.apply_many(X, threads=0))

    def test_instance_default_threads(self):
        compiler = SplCompiler(CompilerOptions(codetype="real"))
        routine = compiler.compile_formula("(F 16)", "pdef16",
                                           language="numpy")
        executable = build_executable(routine, prefer="numpy", threads=2)
        assert executable.threads == 2
        X = _complex_batch(256, 16, seed=6)
        np.testing.assert_array_equal(
            executable.apply_many(X),  # uses the instance default (2)
            executable.apply_many(X, threads=1))

    def test_small_batches_skip_parallel_dispatch(self):
        executable = _fft_executable()
        # 3 rows x 16 doubles is far below the element floor.
        assert executable._effective_threads(8, batch=3) == 1

    @requires_cc
    def test_fftw_parallel_bit_identical(self, tmp_path):
        from repro.fftw import FftwLibrary, Planner

        library = FftwLibrary()
        planner = Planner(library, min_time=0.001)
        transform = library.transform(planner.plan_estimate(64))
        X = _complex_batch(64, 64, seed=7)
        serial = transform.apply_many(X, threads=1)
        parallel = transform.apply_many(X, threads=4)
        np.testing.assert_array_equal(serial, parallel)
        np.testing.assert_allclose(serial, np.fft.fft(X, axis=1),
                                   atol=1e-8)


@requires_cc
class TestOpenMPDriver:
    @requires_openmp
    def test_omp_driver_loaded_and_used(self):
        executable = _fft_executable(n=16, prefer="c", name="omp16")
        assert executable.backend == "c"
        assert executable.batch_omp_fn is not None
        X = _complex_batch(256, 16, seed=8)
        np.testing.assert_array_equal(
            executable.apply_many(X, threads=1),
            executable.apply_many(X, threads=2))

    @requires_openmp
    def test_omp_driver_matches_reference(self):
        executable = _fft_executable(n=8, prefer="c", name="omp8")
        X = _complex_batch(512, 8, seed=9)
        np.testing.assert_allclose(
            executable.apply_many(X, threads=2),
            np.fft.fft(X, axis=1), atol=1e-12)

    def test_no_openmp_falls_back_to_sharding(self, monkeypatch):
        # Force the no-OpenMP path: the batch driver loses its omp
        # variant and threads>1 goes through the shared thread pool.
        from repro.perfeval import ccompile, runner

        monkeypatch.setattr(ccompile, "have_openmp", lambda: False)
        compiler = SplCompiler(CompilerOptions(codetype="real"))
        routine = compiler.compile_formula("(F 16)", "noomp16",
                                           language="c")
        executable = runner.build_executable(routine, prefer="c")
        assert executable.backend == "c"
        assert executable.batch_omp_fn is None
        X = _complex_batch(256, 16, seed=10)
        np.testing.assert_array_equal(
            executable.apply_many(X, threads=1),
            executable.apply_many(X, threads=2))
