"""Tests for the performance-evaluation substrate."""

import math

import numpy as np
import pytest

from repro.core.compiler import CompilerOptions, SplCompiler
from repro.perfeval.accuracy import relative_error
from repro.perfeval.ccompile import (
    CCompileError,
    compile_shared_object,
    have_c_compiler,
)
from repro.perfeval.memory import routine_memory
from repro.perfeval.platform import format_table, host_platform
from repro.perfeval.runner import build_executable
from repro.perfeval.timing import pseudo_mflops, time_callable
from tests.conftest import requires_cc


class TestTiming:
    def test_time_callable_positive(self):
        t = time_callable(lambda: None, min_time=0.001, repeats=2)
        assert t >= 0

    def test_time_scales_with_work(self):
        def light():
            sum(range(10))

        def heavy():
            sum(range(10000))

        t_light = time_callable(light, min_time=0.005)
        t_heavy = time_callable(heavy, min_time=0.005)
        assert t_heavy > t_light * 5

    def test_calibration_run_is_discarded(self):
        # The cold calibration batch (first-call warmup: allocator,
        # icache, ctypes fixups) must not be reused as a timed repeat.
        import time as _time

        state = {"calls": 0}

        def fn():
            state["calls"] += 1
            if state["calls"] == 1:
                _time.sleep(0.05)

        t = time_callable(fn, min_time=0.001, repeats=1)
        assert t < 0.025  # reusing the calibration batch would give ~50ms

    def test_repeats_must_be_positive(self):
        with pytest.raises(ValueError):
            time_callable(lambda: None, repeats=0)

    def test_pseudo_mflops_formula(self):
        # 5 N log2 N / t(us): N=1024, t=1ms -> 51.2 pMFlops.
        assert pseudo_mflops(1024, 1e-3) == pytest.approx(51.2)

    def test_pseudo_mflops_zero_time(self):
        assert pseudo_mflops(8, 0.0) == float("inf")


class TestPlatform:
    def test_host_row_fields(self):
        row = host_platform()
        data = row.as_table_row()
        assert set(data) == {"CPU", "L1 cache", "L2 cache", "Memory",
                             "OS", "Compiler"}
        assert data["CPU"]

    def test_format_table(self):
        text = format_table([host_platform()])
        assert "Table 1" in text
        assert "CPU" in text


@requires_cc
class TestCCompile:
    def test_compile_and_cache(self, tmp_path):
        source = "void five(double *restrict y, const double *restrict x)" \
                 "{ y[0] = x[0] + 5.0; }\n"
        path1 = compile_shared_object(source, build_dir=tmp_path)
        path2 = compile_shared_object(source, build_dir=tmp_path)
        assert path1 == path2
        assert path1.exists()

    def test_compile_error_reported(self, tmp_path):
        with pytest.raises(CCompileError) as err:
            compile_shared_object("this is not C;", build_dir=tmp_path)
        assert "compilation failed" in str(err.value)

    def test_load_and_call(self, tmp_path):
        from repro.perfeval.ccompile import load_function
        import ctypes

        source = ("void addone(double *restrict y, "
                  "const double *restrict x) { y[0] = x[0] + 1.0; }\n")
        path = compile_shared_object(source, build_dir=tmp_path)
        fn = load_function(path, "addone")
        x = np.array([41.0])
        y = np.zeros(1)
        dp = ctypes.POINTER(ctypes.c_double)
        fn(y.ctypes.data_as(dp), x.ctypes.data_as(dp))
        assert y[0] == 42.0

    def test_extra_cflags_parsed_from_env(self, monkeypatch):
        from repro.perfeval.ccompile import extra_cflags

        monkeypatch.delenv("SPL_CFLAGS", raising=False)
        assert extra_cflags() == ()
        monkeypatch.setenv("SPL_CFLAGS", "-DSPL_A=1 '-DSPL_B=two words'")
        assert extra_cflags() == ("-DSPL_A=1", "-DSPL_B=two words")

    def test_extra_cflags_change_cache_key(self, tmp_path, monkeypatch):
        # The same source under a different flag set must produce a
        # different cached artifact (no cross-flag-set leakage).
        source = "void noop(double *restrict y, " \
                 "const double *restrict x) { }\n"
        monkeypatch.delenv("SPL_CFLAGS", raising=False)
        plain = compile_shared_object(source, build_dir=tmp_path)
        monkeypatch.setenv("SPL_CFLAGS", "-DSPL_MARKER=1")
        flagged = compile_shared_object(source, build_dir=tmp_path)
        assert plain != flagged
        # ... and the flag set is reproducible: same flags, same path.
        assert compile_shared_object(source, build_dir=tmp_path) == flagged

    def test_openmp_flag_changes_cache_key(self, tmp_path):
        from repro.perfeval.ccompile import have_openmp

        if not have_openmp():
            pytest.skip("toolchain lacks OpenMP")
        source = "void noop2(double *restrict y, " \
                 "const double *restrict x) { }\n"
        serial = compile_shared_object(source, build_dir=tmp_path)
        threaded = compile_shared_object(source, build_dir=tmp_path,
                                         openmp=True)
        assert serial != threaded

    def test_cflags_enter_platform_fingerprint(self, monkeypatch):
        from repro.wisdom.keys import (
            platform_description,
            platform_fingerprint,
        )

        monkeypatch.delenv("SPL_CFLAGS", raising=False)
        base = platform_fingerprint()
        monkeypatch.setenv("SPL_CFLAGS", "-march=native")
        assert platform_fingerprint() != base
        assert "-march=native" in platform_description()


class TestRunner:
    def test_python_fallback(self):
        compiler = SplCompiler(CompilerOptions(codetype="real"))
        routine = compiler.compile_formula("(F 2)", "t", language="python")
        executable = build_executable(routine, prefer="python")
        assert executable.backend == "python"
        x = np.array([1 + 2j, 3 - 1j])
        np.testing.assert_allclose(executable.apply(x), np.fft.fft(x),
                                   atol=1e-12)

    @requires_cc
    def test_c_and_python_agree(self):
        compiler = SplCompiler(CompilerOptions(unroll=True,
                                               codetype="real"))
        routine = compiler.compile_formula("(F 8)", "agree8", language="c")
        c_exec = build_executable(routine, prefer="c")
        py_exec = build_executable(routine, prefer="python")
        x = np.random.default_rng(0).standard_normal(8) * (1 + 1j)
        np.testing.assert_allclose(c_exec.apply(x), py_exec.apply(x),
                                   atol=1e-12)

    def test_timer_closure_runs(self):
        compiler = SplCompiler(CompilerOptions(codetype="real"))
        routine = compiler.compile_formula("(F 2)", "t2", language="python")
        executable = build_executable(routine, prefer="python")
        closure = executable.timer_closure()
        closure()  # must not raise

    def test_numpy_backend_selected(self):
        compiler = SplCompiler(CompilerOptions(codetype="real"))
        routine = compiler.compile_formula("(F 4)", "t4", language="numpy")
        executable = build_executable(routine, prefer="numpy")
        assert executable.backend == "numpy"
        assert executable.batch_call is not None
        x = np.array([1 + 2j, 3 - 1j, 0.5j, -2.0])
        np.testing.assert_allclose(executable.apply(x), np.fft.fft(x),
                                   atol=1e-12)

    def test_complex_native_falls_back_from_c(self):
        # codetype complex keeps complex arithmetic the C backend
        # cannot express; prefer="c" must fall through to numpy.
        compiler = SplCompiler(CompilerOptions(codetype="complex"))
        routine = compiler.compile_formula("(F 4)", "cn4",
                                           language="numpy")
        executable = build_executable(routine, prefer="c")
        assert executable.backend in ("numpy", "python")
        x = np.array([1 + 2j, 3 - 1j, 0.5j, -2.0])
        np.testing.assert_allclose(executable.apply(x), np.fft.fft(x),
                                   atol=1e-12)

    def test_bad_prefer_rejected(self):
        from repro.core.errors import SplSemanticError

        compiler = SplCompiler(CompilerOptions(codetype="real"))
        routine = compiler.compile_formula("(F 2)", "bp", language="python")
        with pytest.raises(SplSemanticError):
            build_executable(routine, prefer="fortran")


class TestBatchExecution:
    def _routine(self, size=8, language="python"):
        compiler = SplCompiler(CompilerOptions(codetype="real"))
        return compiler.compile_formula(
            f"(F {size})", f"b{size}{language[0]}", language=language)

    def _batch(self, size, rows, seed=0):
        rng = np.random.default_rng(seed)
        return (rng.standard_normal((rows, size))
                + 1j * rng.standard_normal((rows, size)))

    @pytest.mark.parametrize("prefer", ["python", "numpy"])
    def test_apply_many_matches_apply(self, prefer):
        executable = build_executable(self._routine(), prefer=prefer)
        X = self._batch(8, 5)
        Y = executable.apply_many(X)
        assert Y.shape == (5, 8)
        for b in range(5):
            np.testing.assert_allclose(Y[b], executable.apply(X[b]),
                                       atol=1e-12)

    @requires_cc
    def test_apply_many_c_driver(self):
        executable = build_executable(self._routine(language="c"),
                                      prefer="c")
        assert executable.backend == "c"
        assert executable.batch_fn is not None  # spl_batch_* loaded
        X = self._batch(8, 7)
        np.testing.assert_allclose(
            executable.apply_many(X), np.fft.fft(X, axis=1), atol=1e-12)

    def test_apply_many_reuses_scratch(self):
        executable = build_executable(self._routine(), prefer="python")
        X = self._batch(8, 4)
        executable.apply_many(X)
        first = executable._batch_buffers(4)  # this thread's workspaces
        executable.apply_many(X + 1)
        assert executable._batch_buffers(4) is first  # buffers reused
        executable.apply_many(self._batch(8, 6))
        assert executable._batch_buffers(6) is not first  # resized for B=6

    def test_apply_many_rejects_wrong_shape(self):
        from repro.core.errors import SplSemanticError

        executable = build_executable(self._routine(), prefer="python")
        with pytest.raises(SplSemanticError):
            executable.apply_many(np.zeros((3, 5)))
        with pytest.raises(SplSemanticError):
            executable.apply_many(np.zeros(8))

    def test_apply_many_batch_of_one(self):
        executable = build_executable(self._routine(), prefer="numpy")
        X = self._batch(8, 1)
        np.testing.assert_allclose(executable.apply_many(X)[0],
                                   executable.apply(X[0]), atol=1e-12)

    def test_timer_closure_many_runs(self):
        executable = build_executable(self._routine(size=4),
                                      prefer="numpy")
        closure = executable.timer_closure_many(3)
        closure()  # must not raise

    @requires_cc
    def test_batch_driver_source_and_load(self, tmp_path):
        import ctypes

        from repro.perfeval.ccompile import (
            batch_driver_source,
            load_batch_function,
        )

        source = ("void twice(double *restrict y, "
                  "const double *restrict x) { y[0] = 2.0 * x[0]; }\n")
        source += batch_driver_source("twice", in_len=1, out_len=1)
        path = compile_shared_object(source, build_dir=tmp_path)
        batch_fn = load_batch_function(path, "twice")
        x = np.array([[1.0], [2.0], [3.0]])
        y = np.ones((3, 1))  # driver must zero each row before running
        dp = ctypes.POINTER(ctypes.c_double)
        batch_fn(y.ctypes.data_as(dp), x.ctypes.data_as(dp), 3)
        np.testing.assert_allclose(y, [[2.0], [4.0], [6.0]])

    def test_openmp_batch_driver_source_and_load(self, tmp_path):
        import ctypes

        from repro.perfeval.ccompile import (
            batch_driver_source,
            have_openmp,
            load_batch_omp_function,
        )

        if not have_openmp():
            pytest.skip("toolchain lacks OpenMP")
        source = ("void triple(double *restrict y, "
                  "const double *restrict x) { y[0] = 3.0 * x[0]; }\n")
        source += batch_driver_source("triple", in_len=1, out_len=1,
                                      openmp=True)
        path = compile_shared_object(source, build_dir=tmp_path,
                                     openmp=True)
        omp_fn = load_batch_omp_function(path, "triple")
        x = np.arange(1.0, 9.0).reshape(8, 1)
        y = np.ones((8, 1))  # driver must zero each row before running
        dp = ctypes.POINTER(ctypes.c_double)
        omp_fn(y.ctypes.data_as(dp), x.ctypes.data_as(dp), 8, 2)
        np.testing.assert_allclose(y, 3.0 * x)


class TestMemory:
    def test_accounting(self):
        compiler = SplCompiler(CompilerOptions(codetype="real"))
        routine = compiler.compile_formula("(T 16 4)", "m", language="c")
        report = routine_memory(routine)
        assert report.table_bytes == 32 * 8  # 16 complex -> 32 reals
        assert report.io_bytes == (16 + 16) * 2 * 8
        assert report.total_bytes == sum(
            (report.code_bytes, report.table_bytes, report.temp_bytes,
             report.io_bytes)
        )

    def test_as_dict(self):
        compiler = SplCompiler(CompilerOptions(codetype="real"))
        routine = compiler.compile_formula("(I 4)", "m2", language="c")
        data = routine_memory(routine).as_dict()
        assert set(data) == {"code", "tables", "temps", "io", "total"}


class TestAccuracy:
    def test_exact_fft_has_tiny_error(self):
        err = relative_error(np.fft.fft, 64)
        assert err < 1e-14

    def test_wrong_fft_detected(self):
        err = relative_error(lambda x: np.fft.fft(x) * 1.001, 64)
        assert err > 1e-4

    def test_error_grows_slowly_with_size(self):
        e_small = relative_error(np.fft.fft, 8)
        e_large = relative_error(np.fft.fft, 4096)
        assert e_large < 100 * max(e_small, 1e-17)
