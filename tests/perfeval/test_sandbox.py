"""Tests for sandboxed candidate measurement (hostile-codelet suite).

Each hostile fixture is a syntactically valid SPL-style C routine that
misbehaves at runtime — segfault, infinite loop, NaN output — plus one
that does not compile at all.  The sandbox must convert every one of
them into a structured :class:`CandidateFailure` (never an exception,
never a hung test run) and remember it in the quarantine.
"""

import math

import pytest

from repro.perfeval.sandbox import (
    CandidateFailure,
    Quarantine,
    SandboxPolicy,
    SandboxResult,
    TRANSIENT_KINDS,
    default_quarantine,
    measure_candidate,
    plan_key,
    sandbox_supported,
    source_key,
)
from tests.conftest import HAS_CC

requires_sandbox = pytest.mark.skipif(
    not (HAS_CC and sandbox_supported()),
    reason="needs a C compiler and POSIX process isolation",
)

# -- hostile codelet fixtures -------------------------------------------

GOOD_SOURCE = """
void good8(double *y, const double *x)
{
    int i;
    for (i = 0; i < 8; i++) y[i] = 2.0 * x[i];
}
"""

SEGFAULT_SOURCE = """
void crash8(double *y, const double *x)
{
    volatile double *p = (volatile double *)1;
    p[0] = x[0];  /* write through a wild pointer */
    y[0] = p[0];
}
"""

HANG_SOURCE = """
void hang8(double *y, const double *x)
{
    volatile int keep = 1;
    while (keep) { }
    y[0] = x[0];
}
"""

NAN_SOURCE = """
void nan8(double *y, const double *x)
{
    volatile double zero = 0.0;
    int i;
    for (i = 0; i < 8; i++) y[i] = zero / zero;
    (void)x;
}
"""

BROKEN_SOURCE = "void broken8(double *y, const double *x) { this is not C"


def measure(source, name, *, quarantine, timeout=10.0, **kwargs):
    policy = kwargs.pop("policy", None) or SandboxPolicy(
        timeout=timeout, backoff=0.0)
    return measure_candidate(
        source, name, in_len=8, out_len=8, policy=policy,
        min_time=0.0005, quarantine=quarantine, **kwargs,
    )


class TestKeys:
    def test_plan_key_stable_and_distinct(self):
        assert plan_key("a", 1) == plan_key("a", 1)
        assert plan_key("a", 1) != plan_key("a", 2)
        assert len(plan_key("x")) == 32

    def test_source_key_covers_flags(self):
        assert source_key("src") == source_key("src")
        assert source_key("src") != source_key("src", ("-O0",))
        assert source_key("src") != source_key("other")


class TestQuarantine:
    def _failure(self, key="k1", kind="crash"):
        return CandidateFailure(kind=kind, plan_key=key)

    def test_add_check_and_skip_counter(self):
        q = Quarantine()
        assert q.check("k1") is None
        assert q.skips == 0
        q.add(self._failure())
        assert "k1" in q
        assert len(q) == 1
        assert q.check("k1").kind == "crash"
        assert q.skips == 1

    def test_stats_and_describe(self):
        q = Quarantine()
        q.add(self._failure("k1", "crash"))
        q.add(self._failure("k2", "hang"))
        stats = q.stats()
        assert stats["entries"] == 2
        assert stats["kinds"] == {"crash": 1, "hang": 1}
        assert "crash=1" in q.describe()

    def test_clear(self):
        q = Quarantine()
        q.add(self._failure())
        q.clear()
        assert len(q) == 0

    def test_default_quarantine_is_shared(self):
        assert default_quarantine() is default_quarantine()

    def test_empty_quarantine_is_still_used(self):
        # Regression: an *empty* Quarantine is falsy (len == 0); the
        # sandbox must not silently substitute the process-wide one.
        q = Quarantine()
        assert not q  # the hazard under test
        failure = measure_candidate(
            "nonsense", "nope", in_len=8, out_len=8,
            policy=SandboxPolicy(retries=0, backoff=0.0),
            quarantine=q,
        )
        assert isinstance(failure, CandidateFailure)
        assert failure.plan_key in q


class TestFailureDescribe:
    def test_describe_mentions_kind_and_signal(self):
        failure = CandidateFailure(kind="crash", plan_key="deadbeef" * 4,
                                   signal=11, attempts=1)
        text = failure.describe()
        assert "crash" in text
        assert "signal 11" in text


@requires_sandbox
class TestSandboxOutcomes:
    def test_good_candidate_returns_timing(self):
        q = Quarantine()
        result = measure(GOOD_SOURCE, "good8", quarantine=q)
        assert isinstance(result, SandboxResult)
        assert result.seconds > 0
        assert math.isfinite(result.seconds)
        assert len(q) == 0

    def test_segfault_reported_as_crash(self):
        q = Quarantine()
        result = measure(SEGFAULT_SOURCE, "crash8", quarantine=q)
        assert isinstance(result, CandidateFailure)
        assert result.kind == "crash"
        assert result.signal == 11  # SIGSEGV
        assert result.attempts == 1  # deterministic: no retry
        assert result.plan_key in q

    def test_infinite_loop_reported_as_hang(self):
        q = Quarantine()
        result = measure(HANG_SOURCE, "hang8", quarantine=q, timeout=0.5)
        assert isinstance(result, CandidateFailure)
        assert result.kind == "hang"
        assert result.attempts == 1
        assert result.plan_key in q

    def test_nan_output_rejected(self):
        q = Quarantine()
        result = measure(NAN_SOURCE, "nan8", quarantine=q)
        assert isinstance(result, CandidateFailure)
        assert result.kind == "nan"
        assert result.plan_key in q

    def test_nan_check_can_be_disabled(self):
        q = Quarantine()
        result = measure(
            NAN_SOURCE, "nan8", quarantine=q,
            policy=SandboxPolicy(timeout=10.0, backoff=0.0,
                                 check_output=False),
        )
        assert isinstance(result, SandboxResult)

    def test_compile_failure_is_transient_and_retried(self):
        assert "compile" in TRANSIENT_KINDS
        q = Quarantine()
        result = measure(BROKEN_SOURCE, "broken8", quarantine=q)
        assert isinstance(result, CandidateFailure)
        assert result.kind == "compile"
        assert result.attempts == 2  # default policy grants one retry
        assert result.detail  # compiler stderr captured

    def test_quarantined_candidate_is_never_rerun(self):
        q = Quarantine()
        first = measure(SEGFAULT_SOURCE, "crash8", quarantine=q)
        assert isinstance(first, CandidateFailure)
        skips_before = q.skips
        again = measure(SEGFAULT_SOURCE, "crash8", quarantine=q)
        assert again is first  # the remembered failure, not a re-run
        assert q.skips == skips_before + 1

    def test_explicit_key_overrides_source_hash(self):
        q = Quarantine()
        key = plan_key("custom", 8)
        result = measure(SEGFAULT_SOURCE, "crash8", quarantine=q, key=key)
        assert result.plan_key == key
        assert key in q
