"""Property tests for the batch execution layer: for random formulas
the NumPy batch backend agrees elementwise with the i-code interpreter
and the pure-Python backend — for strided and non-strided programs,
``#codetype real`` and ``complex``, and batch sizes {1, 7, 64}."""

import numpy as np
import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core import nodes
from repro.core.backend_numpy import compile_numpy
from repro.core.backend_python import compile_python
from repro.core.compiler import CompilerOptions, SplCompiler
from repro.core.interpreter import run_program

BATCH_SIZES = (1, 7, 64)

ATOL = 1e-10


@st.composite
def leaf_formulas(draw):
    kind = draw(st.sampled_from(["I", "F", "J", "L", "T"]))
    if kind in ("I", "F", "J"):
        n = draw(st.integers(1, 4))
        return nodes.Param(name=kind, params=(n,))
    s = draw(st.integers(1, 3))
    m = draw(st.integers(1, 3))
    return nodes.Param(name=kind, params=(m * s, s))


@st.composite
def formulas(draw, depth=2):
    if depth == 0:
        return draw(leaf_formulas())
    kind = draw(st.sampled_from(["leaf", "tensor", "compose"]))
    if kind == "leaf":
        return draw(leaf_formulas())
    left = draw(formulas(depth=depth - 1))
    right = draw(formulas(depth=depth - 1))
    if kind == "tensor":
        return nodes.Tensor(left=left, right=right)
    from repro.formulas import to_matrix

    left_n = to_matrix(left).shape[1]
    right_n = to_matrix(right).shape[0]
    if left_n != right_n:
        if left_n < right_n:
            left = nodes.DirectSum(
                left=left, right=nodes.identity(right_n - left_n))
        else:
            right = nodes.DirectSum(
                left=right, right=nodes.identity(left_n - right_n))
    return nodes.Compose(left=left, right=right)


def _random_physical(batch, length, dtype, seed):
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((batch, length))
    if dtype is complex:
        x = x + 1j * rng.standard_normal((batch, length))
    return x.astype(dtype)


def _run_numpy_backend(program, Xp, **strides):
    fn = compile_numpy(program)
    out_len = Xp.shape[0], _out_physical_len(program, **strides)
    y = np.zeros(out_len, dtype=Xp.dtype)
    fn(y, Xp, **strides)
    return y


def _out_physical_len(program, istride=1, ostride=1, iofs=0, oofs=0):
    width = program.element_width
    if program.strided:
        return (oofs + (program.out_size - 1) * ostride + 1) * width
    return program.out_size * width


def _in_physical_len(program, istride=1, ostride=1, iofs=0, oofs=0):
    width = program.element_width
    if program.strided:
        return (iofs + (program.in_size - 1) * istride + 1) * width
    return program.in_size * width


def _reference_rows(program, Xp, **strides):
    """Interpreter (row by row) — the ground truth."""
    return np.array([
        run_program(program, list(row), **strides) for row in Xp
    ])


def _python_rows(program, Xp, out_len, **strides):
    """Pure-Python backend, row by row."""
    fn = compile_python(program)
    rows = []
    for row in Xp:
        y = [0.0] * out_len
        fn(y, list(row), **strides)
        rows.append(y)
    return np.array(rows)


def _check_agreement(program, *, seed, strides=None):
    strides = strides or {}
    dtype = complex if (program.element_width == 1
                       and program.datatype == "complex") else float
    in_len = _in_physical_len(program, **strides)
    out_len = _out_physical_len(program, **strides)
    # One reference pass over the largest batch; the smaller batch
    # sizes reuse its prefix rows (the references are row-independent).
    X = _random_physical(max(BATCH_SIZES), in_len, dtype, seed)
    expected = _reference_rows(program, X, **strides)
    py = _python_rows(program, X, out_len, **strides)
    np.testing.assert_allclose(py, expected, atol=ATOL)
    for batch in BATCH_SIZES:
        got = _run_numpy_backend(program, X[:batch], **strides)
        np.testing.assert_allclose(got, expected[:batch], atol=ATOL)
        np.testing.assert_allclose(got, py[:batch], atol=ATOL)


class TestNumpyBackendAgreesWithInterpreter:
    @given(formula=formulas(), codetype=st.sampled_from(["real", "complex"]),
           data=st.data())
    @settings(max_examples=20, deadline=None)
    def test_non_strided(self, formula, codetype, data):
        compiler = SplCompiler(CompilerOptions(codetype=codetype))
        routine = compiler.compile_formula(formula, "prop",
                                           language="numpy")
        _check_agreement(routine.program,
                         seed=data.draw(st.integers(0, 2**32 - 1)))

    @given(formula=formulas(), codetype=st.sampled_from(["real", "complex"]),
           istride=st.integers(1, 3), ostride=st.integers(1, 3),
           iofs=st.integers(0, 2), oofs=st.integers(0, 2),
           data=st.data())
    @settings(max_examples=20, deadline=None)
    def test_strided(self, formula, codetype, istride, ostride, iofs, oofs,
                     data):
        compiler = SplCompiler(CompilerOptions(codetype=codetype))
        routine = compiler.compile_formula(formula, "prop",
                                           language="numpy", strided=True)
        _check_agreement(
            routine.program,
            seed=data.draw(st.integers(0, 2**32 - 1)),
            strides=dict(istride=istride, ostride=ostride,
                         iofs=iofs, oofs=oofs),
        )

    @given(formula=formulas(depth=1), data=st.data())
    @settings(max_examples=15, deadline=None)
    def test_unrolled_straight_line(self, formula, data):
        compiler = SplCompiler(CompilerOptions(codetype="real",
                                               unroll=True))
        routine = compiler.compile_formula(formula, "prop",
                                           language="numpy")
        _check_agreement(routine.program,
                         seed=data.draw(st.integers(0, 2**32 - 1)))
