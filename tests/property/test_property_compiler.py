"""Property-based tests over random formulas: the pipeline is semantics-
preserving at every configuration, and the factorization identities
hold for arbitrary shapes."""

import numpy as np
import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core import nodes
from repro.core.compiler import CompilerOptions, SplCompiler
from repro.formulas import to_matrix
from repro.formulas.factorization import ct_dif, ct_dit, ct_multi
from repro.formulas.transforms import dft_matrix


@st.composite
def leaf_formulas(draw):
    kind = draw(st.sampled_from(["I", "F", "J", "L", "T", "diag", "perm"]))
    if kind in ("I", "F", "J"):
        n = draw(st.integers(1, 4))
        return nodes.Param(name=kind, params=(n,))
    if kind in ("L", "T"):
        s = draw(st.integers(1, 3))
        m = draw(st.integers(1, 3))
        return nodes.Param(name=kind, params=(m * s, s))
    if kind == "diag":
        values = draw(st.lists(
            st.integers(-3, 3).map(float), min_size=1, max_size=4))
        return nodes.DiagonalLit(values=tuple(values))
    n = draw(st.integers(1, 4))
    perm = draw(st.permutations(list(range(1, n + 1))))
    return nodes.PermutationLit(perm=tuple(perm))


@st.composite
def formulas(draw, depth=2):
    if depth == 0:
        return draw(leaf_formulas())
    kind = draw(st.sampled_from(["leaf", "tensor", "direct-sum", "compose"]))
    if kind == "leaf":
        return draw(leaf_formulas())
    left = draw(formulas(depth=depth - 1))
    right = draw(formulas(depth=depth - 1))
    if kind == "tensor":
        return nodes.Tensor(left=left, right=right)
    if kind == "direct-sum":
        return nodes.DirectSum(left=left, right=right)
    # compose: square sizes here, so wrap mismatches in a direct sum of
    # identities to align them.
    left_n = to_matrix(left).shape[1]
    right_n = to_matrix(right).shape[0]
    if left_n != right_n:
        if left_n < right_n:
            left = nodes.DirectSum(
                left=left, right=nodes.identity(right_n - left_n))
        else:
            right = nodes.DirectSum(
                left=right, right=nodes.identity(left_n - right_n))
    return nodes.Compose(left=left, right=right)


def run_and_compare(formula, options, seed=0):
    compiler = SplCompiler(options)
    routine = compiler.compile_formula(formula, "prop", language="python")
    matrix = to_matrix(formula)
    rng = np.random.default_rng(seed)
    x = rng.standard_normal(matrix.shape[1]) \
        + 1j * rng.standard_normal(matrix.shape[1])
    got = np.asarray(routine.run(list(x)))
    np.testing.assert_allclose(got, matrix @ x, atol=1e-8)


class TestPipelinePreservesSemantics:
    @settings(max_examples=40, deadline=None)
    @given(formulas())
    def test_default_options(self, formula):
        run_and_compare(formula, CompilerOptions())

    @settings(max_examples=30, deadline=None)
    @given(formulas())
    def test_unrolled_and_optimized(self, formula):
        run_and_compare(formula, CompilerOptions(unroll=True,
                                                 optimize="default"))

    @settings(max_examples=20, deadline=None)
    @given(formulas())
    def test_no_optimization_agrees(self, formula):
        run_and_compare(formula, CompilerOptions(optimize="none"))

    @settings(max_examples=20, deadline=None)
    @given(formulas())
    def test_lowered_real_code(self, formula):
        run_and_compare(formula, CompilerOptions(codetype="real",
                                                 unroll=True))


class TestParserRoundTrip:
    @settings(max_examples=50, deadline=None)
    @given(formulas(depth=3))
    def test_to_spl_parses_back(self, formula):
        from repro.core.parser import parse_formula_text

        again = parse_formula_text(formula.to_spl())
        assert again == formula


class TestFactorizationProperties:
    @settings(max_examples=25, deadline=None)
    @given(st.integers(2, 8), st.integers(2, 8))
    def test_dit_and_dif_for_all_splits(self, r, s):
        np.testing.assert_allclose(to_matrix(ct_dit(r, s)),
                                   dft_matrix(r * s), atol=1e-8)
        np.testing.assert_allclose(to_matrix(ct_dif(r, s)),
                                   dft_matrix(r * s), atol=1e-8)

    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.integers(2, 4), min_size=2, max_size=4))
    def test_multi_for_any_factors(self, factors):
        n = int(np.prod(factors))
        np.testing.assert_allclose(to_matrix(ct_multi(factors)),
                                   dft_matrix(n), atol=1e-8)

    @settings(max_examples=25, deadline=None)
    @given(st.integers(1, 5), st.integers(1, 5))
    def test_stride_perm_transpose_inverse(self, a, b):
        from repro.formulas.transforms import stride_perm_matrix

        n = a * b
        p = stride_perm_matrix(n, a)
        np.testing.assert_allclose(p @ stride_perm_matrix(n, b), np.eye(n),
                                   atol=0)
