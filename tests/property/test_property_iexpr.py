"""Property-based tests for the IExpr polynomial algebra."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core.icode import IExpr

VARS = ("i0", "i1", "i2")


@st.composite
def iexprs(draw, max_terms=4):
    expr = IExpr.const(draw(st.integers(-8, 8)))
    for _ in range(draw(st.integers(0, max_terms))):
        coeff = draw(st.integers(-8, 8))
        mono = IExpr.const(coeff)
        for _ in range(draw(st.integers(1, 2))):
            mono = mono * IExpr.var(draw(st.sampled_from(VARS)))
        expr = expr + mono
    return expr


@st.composite
def assignments(draw):
    return {name: draw(st.integers(0, 10)) for name in VARS}


def evaluate(expr: IExpr, env: dict) -> int:
    value = expr.subst(env).as_const()
    assert value is not None
    return value


class TestRingLaws:
    @given(iexprs(), iexprs(), assignments())
    def test_addition_commutes(self, a, b, env):
        assert evaluate(a + b, env) == evaluate(b + a, env)
        assert (a + b) == (b + a)

    @given(iexprs(), iexprs(), iexprs(), assignments())
    def test_addition_associates(self, a, b, c, env):
        assert ((a + b) + c) == (a + (b + c))

    @given(iexprs(), iexprs(), assignments())
    def test_multiplication_commutes(self, a, b, env):
        assert (a * b) == (b * a)

    @given(iexprs(), iexprs(), iexprs())
    def test_distributivity(self, a, b, c):
        assert a * (b + c) == a * b + a * c

    @given(iexprs())
    def test_additive_inverse(self, a):
        assert (a - a).terms == ()

    @given(iexprs())
    def test_neutral_elements(self, a):
        assert a + IExpr.const(0) == a
        assert a * IExpr.const(1) == a
        assert (a * IExpr.const(0)).terms == ()


class TestEvaluationHomomorphism:
    @given(iexprs(), iexprs(), assignments())
    def test_add(self, a, b, env):
        assert evaluate(a + b, env) == evaluate(a, env) + evaluate(b, env)

    @given(iexprs(), iexprs(), assignments())
    def test_mul(self, a, b, env):
        assert evaluate(a * b, env) == evaluate(a, env) * evaluate(b, env)

    @given(iexprs(), assignments())
    def test_neg(self, a, env):
        assert evaluate(-a, env) == -evaluate(a, env)


class TestInterval:
    @given(iexprs(), assignments())
    def test_interval_contains_every_value(self, expr, env):
        ranges = {name: (0, 10) for name in VARS}
        lo, hi = expr.interval(ranges)
        value = evaluate(expr, env)
        assert lo <= value <= hi

    @given(iexprs())
    def test_interval_of_constant_is_tight(self, expr):
        const = expr.as_const()
        if const is not None:
            assert expr.interval({}) == (const, const)


class TestSubstitution:
    @given(iexprs(), assignments())
    def test_full_substitution_is_constant(self, expr, env):
        assert expr.subst(env).as_const() is not None

    @given(iexprs(), st.integers(0, 10), assignments())
    def test_substitution_composes(self, expr, value, env):
        # Substituting i0 then the rest equals substituting all at once.
        step1 = expr.subst({"i0": value})
        env_all = dict(env)
        env_all["i0"] = value
        assert step1.subst(env_all).as_const() == \
            expr.subst(env_all).as_const()

    @given(iexprs())
    def test_affine_round_trip(self, expr):
        affine = expr.as_affine()
        if affine is None:
            return
        coeffs, const = affine
        rebuilt = IExpr.const(const)
        for name, coeff in coeffs.items():
            rebuilt = rebuilt + IExpr.var(name) * coeff
        assert rebuilt == expr
