"""Property tests for the in-process codelet JIT: for random unrolled
formulas the JIT backend agrees with the i-code interpreter and the
pure-Python backend, and is *bit-identical* to the gcc-compiled C
backend — for real and (type-transformed) complex programs and batch
sizes {1, 7, 64}.  Strided and looped programs must fall back, never
mis-execute."""

import ctypes

import numpy as np
import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.core.backend_python import compile_python
from repro.core.compiler import CompilerOptions, SplCompiler
from repro.core.interpreter import run_program
from repro.perfeval import jit
from repro.perfeval.ccompile import have_c_compiler
from repro.perfeval.runner import build_executable

from tests.property.test_property_batch import formulas

BATCH_SIZES = (1, 7, 64)
ATOL = 1e-10

# Real-datatype coverage: formulas whose constants are all real (F_2
# butterflies and permutations), since only the complex datatype goes
# through the complex-to-real type transformation.
REAL_FORMULAS = (
    "(F 2)",
    "(tensor (F 2) (F 2))",
    "(compose (tensor (F 2) (I 2)) (L 4 2) (tensor (F 2) (I 2)))",
)

needs_jit = pytest.mark.skipif(
    not jit.jit_supported(),
    reason="in-process JIT unsupported on this host",
)
needs_cc = pytest.mark.skipif(
    not have_c_compiler(), reason="no C compiler on PATH",
)

_DP = ctypes.POINTER(ctypes.c_double)


def _jit_rows(jitted, Xp, out_len):
    rows = []
    for row in Xp:
        x = np.ascontiguousarray(row, dtype=np.float64)
        y = np.zeros(out_len, dtype=np.float64)
        jitted.fn(y.ctypes.data_as(_DP), x.ctypes.data_as(_DP))
        rows.append(y)
    return np.array(rows)


def _jit_batch(jitted, Xp, out_len):
    Xp = np.ascontiguousarray(Xp, dtype=np.float64)
    Y = np.zeros((Xp.shape[0], out_len), dtype=np.float64)
    jitted.batch_fn(Y.ctypes.data_as(_DP), Xp.ctypes.data_as(_DP),
                    Xp.shape[0])
    return Y


def _compile_unrolled(formula, codetype="real", datatype=None):
    compiler = SplCompiler(CompilerOptions(codetype=codetype,
                                           unroll=True))
    return compiler.compile_formula(formula, "jprop", language="c",
                                    datatype=datatype)


@needs_jit
class TestJitAgreesWithOracles:
    """JIT vs interpreter vs pure Python, scalar and batch entries."""

    @given(formula=formulas(), data=st.data())
    @settings(max_examples=15, deadline=None)
    def test_oracle_agreement(self, formula, data):
        routine = _compile_unrolled(formula, datatype="complex")
        program = routine.program
        assert program.is_straight_line()
        assert jit.can_jit(program)
        jitted = jit.compile_jit(program)

        width = program.element_width
        in_len = program.in_size * width
        out_len = program.out_size * width
        seed = data.draw(st.integers(0, 2**32 - 1))
        X = np.random.default_rng(seed).standard_normal(
            (max(BATCH_SIZES), in_len))

        expected = np.array([run_program(program, list(row)) for row in X])
        python_fn = compile_python(program)
        py = []
        for row in X:
            y = [0.0] * out_len
            python_fn(y, list(row))
            py.append(y)
        py = np.array(py)
        np.testing.assert_allclose(py, expected, atol=ATOL)

        got = _jit_rows(jitted, X, out_len)
        np.testing.assert_allclose(got, expected, atol=ATOL)
        for batch in BATCH_SIZES:
            got_b = _jit_batch(jitted, X[:batch], out_len)
            np.testing.assert_allclose(got_b, expected[:batch], atol=ATOL)
            # Scalar and batch entries run the same machine code on the
            # same operands: bitwise equal, not merely close.
            assert np.array_equal(got_b, got[:batch])

    @pytest.mark.parametrize("formula", REAL_FORMULAS)
    def test_real_datatype_agreement(self, formula):
        routine = _compile_unrolled(formula, datatype="real")
        program = routine.program
        assert jit.can_jit(program)
        jitted = jit.compile_jit(program)
        X = np.random.default_rng(5).standard_normal(
            (max(BATCH_SIZES), program.in_size))
        expected = np.array([run_program(program, list(row)) for row in X])
        np.testing.assert_allclose(
            _jit_rows(jitted, X, program.out_size), expected, atol=ATOL)
        for batch in BATCH_SIZES:
            np.testing.assert_allclose(
                _jit_batch(jitted, X[:batch], program.out_size),
                expected[:batch], atol=ATOL)

    def test_zero_batch_is_a_no_op(self):
        routine = _compile_unrolled("(F 4)")
        jitted = jit.compile_jit(routine.program)
        Y = np.full((3, 8), 7.0)
        X = np.zeros((3, 8))
        jitted.batch_fn(Y.ctypes.data_as(_DP), X.ctypes.data_as(_DP), 0)
        assert np.all(Y == 7.0)


@needs_jit
@needs_cc
class TestJitBitIdenticalToC:
    """The acceptance bar: JIT output == C backend output, every bit."""

    @given(formula=formulas(), data=st.data())
    @settings(max_examples=10, deadline=None)
    def test_bit_identity(self, formula, data):
        routine = _compile_unrolled(formula, datatype="complex")
        program = routine.program
        jitted = jit.compile_jit(program)
        executable = build_executable(routine, prefer="c")
        assert executable.backend == "c"

        width = program.element_width
        in_len = program.in_size * width
        out_len = program.out_size * width
        seed = data.draw(st.integers(0, 2**32 - 1))
        X = np.random.default_rng(seed).standard_normal(
            (max(BATCH_SIZES), in_len))

        c_double_p = _DP
        c_rows = []
        for row in X:
            x = np.ascontiguousarray(row)
            y = np.zeros(out_len)
            executable.ctypes_fn(y.ctypes.data_as(c_double_p),
                                 x.ctypes.data_as(c_double_p))
            c_rows.append(y)
        c_rows = np.array(c_rows)
        assert np.array_equal(_jit_rows(jitted, X, out_len), c_rows)
        for batch in BATCH_SIZES:
            assert np.array_equal(
                _jit_batch(jitted, X[:batch], out_len), c_rows[:batch])


class TestIneligibleProgramsFallBack:
    """Programs the emitter cannot lower must reach another backend."""

    def test_looped_program_is_not_jittable(self):
        compiler = SplCompiler(CompilerOptions(codetype="real"))
        routine = compiler.compile_formula(
            "(tensor (I 8) (F 4))", "jloop", language="c")
        assert not routine.program.is_straight_line()
        assert not jit.can_jit(routine.program)
        with pytest.raises(jit.JitError):
            jit.compile_jit(routine.program)

    def test_strided_program_is_not_jittable(self):
        compiler = SplCompiler(CompilerOptions(codetype="real",
                                               unroll=True))
        routine = compiler.compile_formula("(F 4)", "jstr", language="c",
                                           strided=True)
        assert not jit.can_jit(routine.program)

    def test_complex_native_program_is_not_jittable(self):
        compiler = SplCompiler(CompilerOptions(codetype="complex",
                                               unroll=True))
        routine = compiler.compile_formula("(F 4)", "jcx",
                                           language="python")
        assert routine.program.element_width == 1
        assert not jit.can_jit(routine.program)

    def test_build_executable_falls_through(self, monkeypatch):
        monkeypatch.setenv("SPL_JIT_UPGRADE", "0")
        compiler = SplCompiler(CompilerOptions(codetype="real"))
        routine = compiler.compile_formula(
            "(tensor (I 8) (F 4))", "jfall", language="cjit")
        executable = build_executable(routine, prefer="cjit")
        assert executable.backend != "cjit"
        x = np.random.default_rng(0).standard_normal(32) + 0j
        got = executable.apply(x)
        ref = np.array(routine.run(list(x)))
        np.testing.assert_allclose(got, ref, atol=ATOL)


@needs_cc
class TestCodeletLoopParity:
    """A codelet-unrolled plan is bit-identical to its looped form,
    and the codelet driver's aligned fast path is bit-identical to its
    unaligned fallback loop."""

    FORMULA = ("(compose (tensor (F 4) (I 4)) (T 16 4) "
               "(tensor (I 4) (F 4)) (L 16 4))")

    def _batch(self, seed=11, batch=32, n=16):
        rng = np.random.default_rng(seed)
        return (rng.standard_normal((batch, n))
                + 1j * rng.standard_normal((batch, n)))

    def test_unrolled_plan_matches_looped_plan_bitwise(self):
        X = self._batch()
        results = {}
        for unroll in (False, True):
            compiler = SplCompiler(CompilerOptions(codetype="real",
                                                   unroll=unroll))
            routine = compiler.compile_formula(
                self.FORMULA, f"par{int(unroll)}", language="c")
            assert routine.program.is_straight_line() == unroll
            executable = build_executable(routine, prefer="c")
            results[unroll] = executable.apply_many(X)
        assert np.array_equal(results[False], results[True])

    def test_aligned_fast_path_matches_unaligned_loop_bitwise(self):
        compiler = SplCompiler(CompilerOptions(codetype="real",
                                               unroll=True))
        routine = compiler.compile_formula(self.FORMULA, "paralign",
                                           language="c")
        executable = build_executable(routine, prefer="c")
        assert executable.batch_fn is not None
        batch, row = 16, 32

        def run(offset_doubles):
            # Carve (mis)aligned views out of 64-byte aligned backing
            # stores: offset 0 exercises the SIMD fast path, offset 1
            # the plain fallback loop.
            pad = 8
            xb = np.zeros((batch * row + pad,))
            yb = np.zeros((batch * row + pad,))
            base = np.random.default_rng(3).standard_normal(batch * row)
            for buf in (xb, yb):
                shift = (-buf.ctypes.data % 64) // 8
                assert (buf[shift:].ctypes.data % 64) == 0
            xs = (-xb.ctypes.data % 64) // 8 + offset_doubles
            ys = (-yb.ctypes.data % 64) // 8 + offset_doubles
            X = xb[xs:xs + batch * row].reshape(batch, row)
            Y = yb[ys:ys + batch * row].reshape(batch, row)
            X[:] = base.reshape(batch, row)
            executable.batch_fn(Y.ctypes.data_as(_DP),
                                X.ctypes.data_as(_DP), batch)
            return Y.copy()

        assert np.array_equal(run(0), run(1))
