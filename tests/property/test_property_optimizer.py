"""Property test: the optimizer preserves i-code semantics on random
straight-line and looped programs."""

import math

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core.icode import (
    FConst,
    FVar,
    IExpr,
    Loop,
    Op,
    Program,
    VEC_INPUT,
    VEC_OUTPUT,
    VEC_TEMP,
    VecInfo,
    VecRef,
    clone_body,
)
from repro.core.interpreter import run_program
from repro.core.optimizer import optimize

N = 4
SCALARS = ("f0", "f1", "f2")


@st.composite
def operands(draw, defined_scalars):
    kinds = ["x", "const"]
    if defined_scalars:
        kinds.append("scalar")
    kind = draw(st.sampled_from(kinds))
    if kind == "x":
        return VecRef("x", IExpr.const(draw(st.integers(0, N - 1))))
    if kind == "const":
        return FConst(float(draw(st.integers(-3, 3))))
    return FVar(draw(st.sampled_from(sorted(defined_scalars))))


@st.composite
def straight_line(draw, length=8):
    body = []
    defined = set()
    for _ in range(draw(st.integers(1, length))):
        dest_kind = draw(st.sampled_from(["scalar", "y", "t"]))
        if dest_kind == "scalar":
            name = draw(st.sampled_from(SCALARS))
            dest = FVar(name)
        elif dest_kind == "y":
            dest = VecRef("y", IExpr.const(draw(st.integers(0, N - 1))))
        else:
            dest = VecRef("t0", IExpr.const(draw(st.integers(0, N - 1))))
        op = draw(st.sampled_from(["=", "+", "-", "*", "neg"]))
        a = draw(operands(defined))
        b = draw(operands(defined)) if op in ("+", "-", "*") else None
        body.append(Op(op, dest, a, b))
        if dest_kind == "scalar":
            defined.add(dest.name)
        # Reading t0 before writing is fine: it starts zeroed.
        defined_t = True
    # Ensure y is fully defined so outputs are deterministic.
    for k in range(N):
        a = draw(operands(defined))
        body.append(Op("=", VecRef("y", IExpr.const(k)), a))
    return body


def make_program(body):
    program = Program(name="p", in_size=N, out_size=N, datatype="real",
                      body=body)
    program.vectors["x"] = VecInfo("x", N, VEC_INPUT)
    program.vectors["y"] = VecInfo("y", N, VEC_OUTPUT)
    program.vectors["t0"] = VecInfo("t0", N, VEC_TEMP)
    return program


class TestOptimizerPreservesSemantics:
    @settings(max_examples=120, deadline=None)
    @given(straight_line(), st.lists(st.integers(-5, 5), min_size=N,
                                     max_size=N))
    def test_straight_line(self, body, x):
        x = [float(v) for v in x]
        reference = run_program(make_program(clone_body(body)), list(x))
        optimized = make_program(clone_body(body))
        optimize(optimized)
        result = run_program(optimized, list(x))
        assert result == reference

    @settings(max_examples=60, deadline=None)
    @given(straight_line(length=5),
           st.lists(st.integers(-5, 5), min_size=N, max_size=N),
           st.integers(1, 3))
    def test_wrapped_in_loop(self, inner, x, count):
        i = IExpr.var("i0")
        body = [
            Op("=", FVar("f0"), VecRef("x", IExpr.const(0))),
            Loop("i0", count, clone_body(inner)),
            Op("+", VecRef("y", IExpr.const(0)),
               VecRef("y", IExpr.const(0)), FVar("f0")),
        ]
        x = [float(v) for v in x]
        reference = run_program(make_program(clone_body(body)), list(x))
        optimized = make_program(clone_body(body))
        optimize(optimized)
        assert run_program(optimized, list(x)) == reference

    @settings(max_examples=60, deadline=None)
    @given(straight_line())
    def test_optimization_never_adds_ops(self, body):
        from repro.core.icode import iter_ops

        before = sum(1 for op in iter_ops(body)
                     if op.op in ("+", "-", "*", "neg"))
        program = make_program(clone_body(body))
        optimize(program)
        after = sum(1 for op in iter_ops(program.body)
                    if op.op in ("+", "-", "*", "neg"))
        assert after <= before
