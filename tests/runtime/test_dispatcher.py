"""Tests for the dynamic request batcher (BatchDispatcher)."""

import threading
import time

import numpy as np
import pytest

from repro.core.compiler import CompilerOptions, SplCompiler
from repro.perfeval.runner import build_executable
from repro.runtime import BatchDispatcher


def _executable(n=8, prefer="numpy"):
    compiler = SplCompiler(CompilerOptions(codetype="real"))
    routine = compiler.compile_formula(f"(F {n})", f"disp{n}{prefer[0]}",
                                       language=prefer)
    return build_executable(routine, prefer=prefer)


def _vectors(n, count, seed=0):
    rng = np.random.default_rng(seed)
    return (rng.standard_normal((count, n))
            + 1j * rng.standard_normal((count, n)))


class _CountingTarget:
    """Wraps an executable, counting apply_many calls and batch sizes."""

    def __init__(self, executable):
        self._inner = executable
        self.n = executable.n
        self.calls = []

    def apply_many(self, X, threads=None):
        self.calls.append(X.shape[0])
        return self._inner.apply_many(X)


class TestCoalescing:
    def test_concurrent_requests_share_one_batch(self):
        executable = _executable()
        target = _CountingTarget(executable)
        X = _vectors(8, 6)
        barrier = threading.Barrier(6)
        results = [None] * 6
        # A generous delay so all 6 requests land within one window.
        with BatchDispatcher(target, max_batch=6, max_delay=0.25) as d:

            def client(i):
                barrier.wait()
                results[i] = d.apply(X[i])

            threads = [threading.Thread(target=client, args=(i,))
                       for i in range(6)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            stats = d.stats
        # All six went through strictly fewer apply_many calls, and at
        # least one call served >= 2 requests (the acceptance check).
        assert stats.requests == 6
        assert stats.batches < 6
        assert stats.max_batch >= 2
        assert stats.coalesced_requests >= 2
        assert max(target.calls) >= 2
        for i in range(6):
            np.testing.assert_array_equal(results[i], executable.apply(X[i]))

    def test_bit_identical_to_serial_apply(self):
        for prefer in ("python", "numpy"):
            executable = _executable(prefer=prefer)
            X = _vectors(8, 16, seed=3)
            with BatchDispatcher(executable, max_batch=4,
                                 max_delay=0.01) as d:
                outs = [None] * 16

                def client(i):
                    outs[i] = d.apply(X[i])

                threads = [threading.Thread(target=client, args=(i,))
                           for i in range(16)]
                for t in threads:
                    t.start()
                for t in threads:
                    t.join()
            for i in range(16):
                np.testing.assert_array_equal(
                    outs[i], executable.apply(X[i]))

    def test_size_flush_at_max_batch(self):
        executable = _executable()
        X = _vectors(8, 4)
        with BatchDispatcher(executable, max_batch=2, max_delay=10.0) as d:
            outs = [None] * 4

            def client(i):
                outs[i] = d.apply(X[i])

            threads = [threading.Thread(target=client, args=(i,))
                       for i in range(4)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            stats = d.stats
        # A 10s deadline can't have fired; only size flushes drained it.
        assert stats.size_flushes >= 1
        assert stats.deadline_flushes == 0
        assert stats.max_batch <= 2
        for i in range(4):
            np.testing.assert_array_equal(outs[i], executable.apply(X[i]))

    def test_lone_request_flushes_by_deadline(self):
        executable = _executable()
        x = _vectors(8, 1)[0]
        with BatchDispatcher(executable, max_batch=64,
                             max_delay=0.005) as d:
            start = time.monotonic()
            y = d.apply(x)
            elapsed = time.monotonic() - start
            stats = d.stats
        assert elapsed < 2.0  # did not wait for a full batch
        assert stats.deadline_flushes == 1
        np.testing.assert_array_equal(y, executable.apply(x))


class TestLifecycle:
    def test_close_is_idempotent_and_rejects_new_requests(self):
        executable = _executable()
        d = BatchDispatcher(executable)
        d.close()
        d.close()
        with pytest.raises(RuntimeError):
            d.apply(_vectors(8, 1)[0])

    def test_wrong_shape_rejected_without_enqueue(self):
        executable = _executable()
        with BatchDispatcher(executable) as d:
            with pytest.raises(ValueError):
                d.apply(np.zeros(5))
            assert d.stats.requests == 0

    def test_execution_error_propagates_to_caller(self):
        class Exploding:
            n = 8

            def apply_many(self, X):
                raise RuntimeError("backend exploded")

        with BatchDispatcher(Exploding(), max_delay=0.001) as d:
            with pytest.raises(RuntimeError, match="backend exploded"):
                d.apply(np.zeros(8))
        # The worker survives an erroring batch until close().

    def test_invalid_parameters_rejected(self):
        executable = _executable()
        with pytest.raises(ValueError):
            BatchDispatcher(executable, max_batch=0)
        with pytest.raises(ValueError):
            BatchDispatcher(executable, max_delay=-1.0)

    def test_threads_forwarded_to_apply_many(self):
        executable = _executable()
        seen = []

        class Recording:
            n = executable.n

            def apply_many(self, X, threads=None):
                seen.append(threads)
                return executable.apply_many(X)

        with BatchDispatcher(Recording(), threads=2,
                             max_delay=0.001) as d:
            d.apply(_vectors(8, 1)[0])
        assert seen == [2]
