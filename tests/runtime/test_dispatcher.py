"""Tests for the dynamic request batcher (BatchDispatcher)."""

import threading
import time

import numpy as np
import pytest

from repro.core.compiler import CompilerOptions, SplCompiler
from repro.perfeval.runner import build_executable
from repro.runtime import BatchDispatcher


def _executable(n=8, prefer="numpy"):
    compiler = SplCompiler(CompilerOptions(codetype="real"))
    routine = compiler.compile_formula(f"(F {n})", f"disp{n}{prefer[0]}",
                                       language=prefer)
    return build_executable(routine, prefer=prefer)


def _vectors(n, count, seed=0):
    rng = np.random.default_rng(seed)
    return (rng.standard_normal((count, n))
            + 1j * rng.standard_normal((count, n)))


class _CountingTarget:
    """Wraps an executable, counting apply_many calls and batch sizes."""

    def __init__(self, executable):
        self._inner = executable
        self.n = executable.n
        self.calls = []

    def apply_many(self, X, threads=None):
        self.calls.append(X.shape[0])
        return self._inner.apply_many(X)


class TestCoalescing:
    def test_concurrent_requests_share_one_batch(self):
        executable = _executable()
        target = _CountingTarget(executable)
        X = _vectors(8, 6)
        barrier = threading.Barrier(6)
        results = [None] * 6
        # A generous delay so all 6 requests land within one window.
        with BatchDispatcher(target, max_batch=6, max_delay=0.25) as d:

            def client(i):
                barrier.wait()
                results[i] = d.apply(X[i])

            threads = [threading.Thread(target=client, args=(i,))
                       for i in range(6)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            stats = d.stats
        # All six went through strictly fewer apply_many calls, and at
        # least one call served >= 2 requests (the acceptance check).
        assert stats.requests == 6
        assert stats.batches < 6
        assert stats.max_batch >= 2
        assert stats.coalesced_requests >= 2
        assert max(target.calls) >= 2
        for i in range(6):
            np.testing.assert_array_equal(results[i], executable.apply(X[i]))

    def test_bit_identical_to_serial_apply(self):
        for prefer in ("python", "numpy"):
            executable = _executable(prefer=prefer)
            X = _vectors(8, 16, seed=3)
            with BatchDispatcher(executable, max_batch=4,
                                 max_delay=0.01) as d:
                outs = [None] * 16

                def client(i):
                    outs[i] = d.apply(X[i])

                threads = [threading.Thread(target=client, args=(i,))
                           for i in range(16)]
                for t in threads:
                    t.start()
                for t in threads:
                    t.join()
            for i in range(16):
                np.testing.assert_array_equal(
                    outs[i], executable.apply(X[i]))

    def test_size_flush_at_max_batch(self):
        executable = _executable()
        X = _vectors(8, 4)
        with BatchDispatcher(executable, max_batch=2, max_delay=10.0) as d:
            outs = [None] * 4

            def client(i):
                outs[i] = d.apply(X[i])

            threads = [threading.Thread(target=client, args=(i,))
                       for i in range(4)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            stats = d.stats
        # A 10s deadline can't have fired; only size flushes drained it.
        assert stats.size_flushes >= 1
        assert stats.deadline_flushes == 0
        assert stats.max_batch <= 2
        for i in range(4):
            np.testing.assert_array_equal(outs[i], executable.apply(X[i]))

    def test_lone_request_flushes_by_deadline(self):
        executable = _executable()
        x = _vectors(8, 1)[0]
        with BatchDispatcher(executable, max_batch=64,
                             max_delay=0.005) as d:
            start = time.monotonic()
            y = d.apply(x)
            elapsed = time.monotonic() - start
            stats = d.stats
        assert elapsed < 2.0  # did not wait for a full batch
        assert stats.deadline_flushes == 1
        np.testing.assert_array_equal(y, executable.apply(x))


class TestLifecycle:
    def test_close_is_idempotent_and_rejects_new_requests(self):
        executable = _executable()
        d = BatchDispatcher(executable)
        d.close()
        d.close()
        with pytest.raises(RuntimeError):
            d.apply(_vectors(8, 1)[0])

    def test_wrong_shape_rejected_without_enqueue(self):
        executable = _executable()
        with BatchDispatcher(executable) as d:
            with pytest.raises(ValueError):
                d.apply(np.zeros(5))
            assert d.stats.requests == 0

    def test_execution_error_propagates_to_caller(self):
        class Exploding:
            n = 8

            def apply_many(self, X):
                raise RuntimeError("backend exploded")

        with BatchDispatcher(Exploding(), max_delay=0.001) as d:
            with pytest.raises(RuntimeError, match="backend exploded"):
                d.apply(np.zeros(8))
        # The worker survives an erroring batch until close().

    def test_invalid_parameters_rejected(self):
        executable = _executable()
        with pytest.raises(ValueError):
            BatchDispatcher(executable, max_batch=0)
        with pytest.raises(ValueError):
            BatchDispatcher(executable, max_delay=-1.0)

    def test_threads_forwarded_to_apply_many(self):
        executable = _executable()
        seen = []

        class Recording:
            n = executable.n

            def apply_many(self, X, threads=None):
                seen.append(threads)
                return executable.apply_many(X)

        with BatchDispatcher(Recording(), threads=2,
                             max_delay=0.001) as d:
            d.apply(_vectors(8, 1)[0])
        assert seen == [2]


class TestShutdownSemantics:
    def test_submit_after_close_raises_dispatcher_closed(self):
        from repro.runtime import DispatcherClosed

        executable = _executable()
        d = BatchDispatcher(executable)
        d.close()
        with pytest.raises(DispatcherClosed):
            d.apply(_vectors(8, 1)[0])

    def test_close_drains_pending_requests(self):
        executable = _executable()
        X = _vectors(8, 3)
        # A huge deadline: nothing flushes until close() drains it.
        d = BatchDispatcher(executable, max_batch=64, max_delay=30.0)
        outs = [None] * 3
        threads = [threading.Thread(target=lambda i=i: outs.__setitem__(
            i, d.apply(X[i]))) for i in range(3)]
        for t in threads:
            t.start()
        while d.stats.requests < 3:
            time.sleep(0.001)
        start = time.monotonic()
        d.close()  # drain=True: pending requests execute as final batches
        assert time.monotonic() - start < 5.0
        for t in threads:
            t.join()
        assert d.stats.close_flushes >= 1
        for i in range(3):
            np.testing.assert_array_equal(outs[i], executable.apply(X[i]))

    def test_close_without_drain_cancels_with_dispatcher_closed(self):
        from repro.runtime import DispatcherClosed

        executable = _executable()

        class Gated:
            """Blocks the worker inside the first batch until released."""

            n = executable.n

            def __init__(self):
                self.started = threading.Event()
                self.release = threading.Event()

            def apply_many(self, X):
                self.started.set()
                assert self.release.wait(30)
                return executable.apply_many(X)

        target = Gated()
        d = BatchDispatcher(target, max_batch=1, max_delay=0.0)
        X = _vectors(8, 3)
        outcomes = [None] * 3

        def client(i):
            try:
                outcomes[i] = ("ok", d.apply(X[i]))
            except DispatcherClosed as exc:
                outcomes[i] = ("closed", exc)

        first = threading.Thread(target=client, args=(0,))
        first.start()
        assert target.started.wait(10)  # worker now stuck in batch 0
        rest = [threading.Thread(target=client, args=(i,))
                for i in (1, 2)]
        for t in rest:
            t.start()
        while d.stats.requests < 3:
            time.sleep(0.001)
        closer = threading.Thread(target=d.close, args=(False,))
        closer.start()
        # The pending (never-executed) requests resolve immediately
        # with DispatcherClosed even while the worker is still blocked.
        for t in rest:
            t.join(10)
            assert not t.is_alive()
        assert outcomes[1][0] == "closed"
        assert outcomes[2][0] == "closed"
        target.release.set()  # let the in-flight batch finish
        first.join(10)
        closer.join(10)
        assert not first.is_alive() and not closer.is_alive()
        assert outcomes[0][0] == "ok"
        np.testing.assert_array_equal(outcomes[0][1], executable.apply(X[0]))
        assert d.stats.cancelled_requests == 2

    def test_no_request_outlives_a_dead_worker(self):
        from repro.runtime import DispatcherClosed
        from repro.runtime.dispatcher import _Request

        executable = _executable()
        d = BatchDispatcher(executable, max_batch=64, max_delay=30.0)
        # Simulate requests stranded when the worker exits: inject them
        # behind the worker's back, then close with drain=False.
        stranded = _Request(np.zeros(8, dtype=complex))
        with d._lock:
            d._pending.append(stranded)
        d.close(drain=False)
        assert stranded.done.is_set()
        assert isinstance(stranded.error, DispatcherClosed)


class TestFaultIsolation:
    class Poisonable:
        """Raises on any vector whose first element is NaN."""

        def __init__(self, executable):
            self._inner = executable
            self.n = executable.n

        def apply_many(self, X):
            if np.isnan(X[:, 0].real).any():
                raise ValueError("poisoned vector")
            return self._inner.apply_many(X)

    def test_poisoned_request_fails_alone(self):
        executable = _executable()
        target = self.Poisonable(executable)
        X = _vectors(8, 4)
        poison = X[2].copy()
        poison[0] = np.nan
        vectors = [X[0], X[1], poison, X[3]]
        outcomes = [None] * 4
        barrier = threading.Barrier(4)
        with BatchDispatcher(target, max_batch=4, max_delay=0.25) as d:

            def client(i):
                barrier.wait()
                try:
                    outcomes[i] = ("ok", d.apply(vectors[i]))
                except ValueError as exc:
                    outcomes[i] = ("error", exc)

            threads = [threading.Thread(target=client, args=(i,))
                       for i in range(4)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            stats = d.stats
        # Exactly the poisoned caller saw the error...
        assert outcomes[2][0] == "error"
        assert "poisoned" in str(outcomes[2][1])
        # ... everyone else got their correct row.
        for i in (0, 1, 3):
            assert outcomes[i][0] == "ok"
            np.testing.assert_array_equal(outcomes[i][1],
                                          executable.apply(vectors[i]))
        assert stats.failed_requests == 1
        if stats.max_batch >= 2:
            # When coalescing actually happened, the failed batch was
            # split and retried per-request.
            assert stats.isolation_splits >= 1

    def test_single_request_error_not_counted_as_split(self):
        executable = _executable()
        target = self.Poisonable(executable)
        poison = np.zeros(8, dtype=complex)
        poison[0] = np.nan
        with BatchDispatcher(target, max_batch=1, max_delay=0.0) as d:
            with pytest.raises(ValueError, match="poisoned"):
                d.apply(poison)
            good = _vectors(8, 1)[0]
            np.testing.assert_array_equal(d.apply(good),
                                          executable.apply(good))
            stats = d.stats
        assert stats.isolation_splits == 0
        assert stats.failed_requests == 1


class _GateTarget:
    """Wraps an executable; holds every batch until released."""

    def __init__(self, executable):
        self._inner = executable
        self.n = executable.n
        self.release = threading.Event()

    def apply_many(self, X, threads=None):
        assert self.release.wait(60), "gate never released"
        return self._inner.apply_many(X)


class TestDrainHooks:
    """wait_idle / unresolved_count — the server drain's foundation."""

    def test_idle_dispatcher_is_immediately_idle(self):
        with BatchDispatcher(_executable(), max_batch=4,
                             max_delay=0.01) as d:
            assert d.unresolved_count == 0
            assert d.wait_idle(timeout=0.1) is True

    def test_wait_idle_blocks_until_inflight_resolves(self):
        executable = _executable()
        gate = _GateTarget(executable)
        X = _vectors(8, 3, seed=5)
        with BatchDispatcher(gate, max_batch=4, max_delay=0.01) as d:
            requests = [d.submit(x) for x in X]
            assert d.unresolved_count == 3
            assert d.wait_idle(timeout=0.15) is False  # gate held
            gate.release.set()
            assert d.wait_idle(timeout=30.0) is True
            assert d.unresolved_count == 0
            for x, request in zip(X, requests):
                assert request.error is None
                np.testing.assert_array_equal(request.result,
                                              executable.apply(x))

    def test_failed_requests_also_resolve_idleness(self):
        class Exploding:
            def __init__(self, executable):
                self.n = executable.n

            def apply_many(self, X, threads=None):
                raise RuntimeError("boom")

        with BatchDispatcher(Exploding(_executable()), max_batch=4,
                             max_delay=0.01) as d:
            request = d.submit(_vectors(8, 1, seed=6)[0])
            assert d.wait_idle(timeout=30.0) is True
            assert isinstance(request.error, RuntimeError)

    def test_cancelled_requests_resolve_idleness(self):
        gate = _GateTarget(_executable())
        with BatchDispatcher(gate, max_batch=1, max_delay=5.0) as d:
            d.submit(_vectors(8, 1, seed=7)[0])
            gate.release.set()
            d.close(drain=False)
            assert d.wait_idle(timeout=30.0) is True
