"""Regression tests for the BatchDispatcher bug fixes.

Each test here pins one of the fixed behaviors:

* the latency bound is per-request (``oldest_pending_arrival +
  max_delay``), not a queue-level deadline that restarts after every
  flush — the regression test fails on the old deadline-reset code;
* ``close()`` reached from the worker thread itself (a fault-handling
  callback inside the target) must not self-join and deadlock;
* dtype is validated per request at submission, so one wrong-dtype
  vector cannot poison the dtype of a whole coalesced batch;
* DispatchStats semantics: ``batches`` counts flush attempts (summing
  the flush-reason counters), ``coalesced_requests`` counts requests
  actually served by a shared call, and split retries are counted in
  ``retried_requests``.
"""

import threading
import time

import numpy as np
import pytest

from repro.core.compiler import CompilerOptions, SplCompiler
from repro.perfeval.runner import build_executable
from repro.runtime import BatchDispatcher, DispatcherClosed


def _executable(n=8, prefer="numpy", datatype=None):
    compiler = SplCompiler(CompilerOptions(codetype="real"))
    name = f"dreg{n}{prefer[0]}{(datatype or 'c')[0]}"
    routine = compiler.compile_formula(
        f"(F {n})", name, language=prefer, datatype=datatype
    )
    return build_executable(routine, prefer=prefer)


def _identity_real(n=8):
    """A real-datatype (float64 IO) executable: the identity."""
    compiler = SplCompiler(CompilerOptions(codetype="real"))
    routine = compiler.compile_formula(f"(I {n})", f"dregid{n}",
                                       language="numpy", datatype="real")
    return build_executable(routine, prefer="numpy")


def _vec(n, i=0, seed=0):
    rng = np.random.default_rng(seed + i)
    return rng.standard_normal(n) + 1j * rng.standard_normal(n)


class _Gated:
    """Passes through to an executable; the first call blocks until
    released, and every call records (time, first-element ids)."""

    def __init__(self, executable):
        self._inner = executable
        self.n = executable.n
        self.dtype = executable.dtype
        self.first_entered = threading.Event()
        self.release_first = threading.Event()
        self.calls = []  # (monotonic time, [request ids])

    def apply_many(self, X):
        first = not self.calls
        self.calls.append(
            (time.monotonic(), [int(round(v.real)) for v in X[:, 0]])
        )
        if first:
            self.first_entered.set()
            assert self.release_first.wait(30)
        return self._inner.apply_many(X)


def _id_vector(n, i):
    """A vector tagged with ``i`` in its first element."""
    x = np.zeros(n, dtype=complex)
    x[0] = i
    return x


class TestLatencyBound:
    def test_flush_does_not_restart_pending_requests_clock(self):
        """A request left pending across a flush keeps its original
        latency bound.  The old code reset the queue deadline to
        ``now + max_delay`` after every flush, so the straggler below
        waited a *full* extra max_delay after the gate opened; the
        fixed code flushes it immediately (its bound is long past).
        """
        executable = _executable()
        target = _Gated(executable)
        max_delay = 0.3
        n = executable.n
        with BatchDispatcher(target, max_batch=2,
                             max_delay=max_delay) as d:
            outs = {}

            def client(i):
                outs[i] = d.apply(_id_vector(n, i))

            # Two requests -> an immediate size flush; the worker then
            # blocks inside the gated first apply_many.
            first_two = [threading.Thread(target=client, args=(i,))
                         for i in (0, 1)]
            for t in first_two:
                t.start()
            assert target.first_entered.wait(10)
            # Three more arrive while the worker is stuck; they age
            # well past max_delay before the gate opens.
            rest = [threading.Thread(target=client, args=(i,))
                    for i in (2, 3, 4)]
            for t in rest:
                t.start()
            while d.stats.requests < 5:
                time.sleep(0.001)
            time.sleep(max_delay + 0.2)  # all three are now overdue
            release_time = time.monotonic()
            target.release_first.set()
            for t in first_two + rest:
                t.join(30)
                assert not t.is_alive()
        served_at = {}
        for when, ids in target.calls:
            for i in ids:
                served_at[i] = when
        assert set(served_at) == {0, 1, 2, 3, 4}
        # Request 4 is the straggler: the size flush at gate-open takes
        # 2 and 3, leaving 4 pending.  Its latency bound expired long
        # ago, so the fixed worker takes it immediately; the buggy one
        # restarted its clock and sat on it for another full max_delay.
        assert served_at[4] - release_time < max_delay / 2, (
            f"straggler waited {served_at[4] - release_time:.3f}s after "
            f"the worker went idle — its latency bound was restarted"
        )
        for i in range(5):
            np.testing.assert_array_equal(
                outs[i], executable.apply(_id_vector(n, i)))

    def test_steady_trickle_observes_the_latency_bound(self):
        """Under a steady trickle, no request waits pathologically
        longer than max_delay before resolving (generous slack for
        scheduling and execution time)."""
        executable = _executable()
        max_delay = 0.05
        n = executable.n
        latencies = []
        with BatchDispatcher(executable, max_batch=64,
                             max_delay=max_delay) as d:
            for i in range(12):
                start = time.monotonic()
                d.apply(_vec(n, i))
                latencies.append(time.monotonic() - start)
                time.sleep(max_delay * 0.4)
        # Every request: bounded by max_delay plus service/scheduling
        # slack, never the old worst case of ~2 x max_delay sustained.
        assert max(latencies) < max_delay + 0.5


class TestReentrantClose:
    def test_close_from_worker_thread_does_not_deadlock(self):
        """A fault-handling callback inside the target may close the
        dispatcher; the old unconditional join made the worker join
        itself and deadlock."""
        executable = _executable()

        class SelfCloser:
            n = executable.n
            dtype = executable.dtype
            dispatcher = None

            def apply_many(self, X):
                # e.g. "fatal backend fault -> stop accepting work"
                self.dispatcher.close(drain=False)
                return executable.apply_many(X)

        target = SelfCloser()
        d = BatchDispatcher(target, max_delay=0.001)
        target.dispatcher = d
        x = _vec(executable.n)
        box = {}

        def caller():
            box["y"] = d.apply(x)

        t = threading.Thread(target=caller)
        t.start()
        t.join(10)
        assert not t.is_alive(), "re-entrant close() deadlocked"
        np.testing.assert_array_equal(box["y"], executable.apply(x))
        # The dispatcher really closed: new requests are refused and an
        # outside close() still returns (and joins the dead worker).
        with pytest.raises(DispatcherClosed):
            d.apply(x)
        d.close()
        assert not d._worker.is_alive()


class TestDtypeValidation:
    def test_unsafe_dtype_rejected_at_submit(self):
        """Complex into a float64 transform: np.stack would silently
        upcast the whole coalesced batch (discarding imaginary parts
        on assignment) — it must be rejected at the door instead."""
        executable = _identity_real()
        assert executable.dtype == np.dtype(np.float64)
        with BatchDispatcher(executable) as d:
            with pytest.raises(ValueError, match="cannot safely cast"):
                d.apply(np.zeros(8, dtype=np.complex128))
            assert d.stats.requests == 0  # rejected before enqueue

    def test_safe_upcast_is_coerced_per_request(self):
        """float64 into a complex transform is a safe upcast: coerced
        at submit, and bit-identical to applying the upcast vector."""
        executable = _executable()
        assert executable.dtype == np.dtype(np.complex128)
        x = np.arange(8, dtype=np.float64)
        with BatchDispatcher(executable, max_delay=0.001) as d:
            y = d.apply(x)
        np.testing.assert_array_equal(
            y, executable.apply(x.astype(np.complex128)))

    def test_mixed_dtype_batch_stays_uniform(self):
        """A float64 request coalesced with complex ones is upcast at
        submission, so the stacked batch dtype is uniform and every
        caller gets the exact serial answer."""
        executable = _executable()
        n = executable.n
        vectors = [_vec(n, 0), np.arange(n, dtype=np.float64), _vec(n, 2)]
        outs = [None] * 3
        barrier = threading.Barrier(3)
        with BatchDispatcher(executable, max_batch=3, max_delay=0.25) as d:

            def client(i):
                barrier.wait()
                outs[i] = d.apply(vectors[i])

            threads = [threading.Thread(target=client, args=(i,))
                       for i in range(3)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        for i in range(3):
            np.testing.assert_array_equal(
                outs[i],
                executable.apply(np.asarray(vectors[i],
                                            dtype=np.complex128)))

    def test_explicit_dtype_parameter_overrides_target(self):
        class Bare:
            n = 4

            def apply_many(self, X):
                return X.copy()

        with BatchDispatcher(Bare(), dtype=np.float64,
                             max_delay=0.001) as d:
            with pytest.raises(ValueError):
                d.apply(np.zeros(4, dtype=np.complex128))
            np.testing.assert_array_equal(
                d.apply(np.ones(4)), np.ones(4))


class _Poisonable:
    """Raises on any batch containing a NaN-tagged vector."""

    def __init__(self, executable):
        self._inner = executable
        self.n = executable.n
        self.dtype = executable.dtype

    def apply_many(self, X):
        if np.isnan(X.real).any():
            raise ValueError("poisoned vector")
        return self._inner.apply_many(X)


class TestStatsSemantics:
    def _run_controlled_batch(self, poison_index=None):
        """Warm-up request (gated), then exactly 4 requests coalesced
        into one size-flush of 4; returns (stats, outcomes)."""
        executable = _executable()
        target = _Gated(_Poisonable(executable))
        n = executable.n
        vectors = [_id_vector(n, i + 1) for i in range(4)]
        if poison_index is not None:
            vectors[poison_index][1] = np.nan
        outcomes = [None] * 5
        d = BatchDispatcher(target, max_batch=4, max_delay=0.05)
        try:

            def client(i, x):
                try:
                    outcomes[i] = ("ok", d.apply(x))
                except ValueError as exc:
                    outcomes[i] = ("error", exc)

            warm = threading.Thread(
                target=client, args=(0, _id_vector(n, 0)))
            warm.start()
            assert target.first_entered.wait(10)  # worker gated
            threads = [threading.Thread(target=client,
                                        args=(i + 1, vectors[i]))
                       for i in range(4)]
            for t in threads:
                t.start()
            while d.stats.requests < 5:
                time.sleep(0.001)
            target.release_first.set()
            for t in [warm] + threads:
                t.join(30)
                assert not t.is_alive()
            stats = d.stats
        finally:
            d.close()
        return stats, outcomes

    def test_flush_counters_sum_to_batches_on_success(self):
        stats, outcomes = self._run_controlled_batch()
        assert stats.requests == 5
        # Warm-up flush + the coalesced flush of 4: two attempts.
        assert stats.batches == 2
        assert stats.batches == (stats.size_flushes
                                 + stats.deadline_flushes
                                 + stats.close_flushes)
        assert stats.coalesced_requests == 4
        assert stats.isolation_splits == 0
        assert stats.retried_requests == 0
        assert stats.failed_requests == 0
        assert all(kind == "ok" for kind, _ in outcomes)

    def test_failed_batch_not_counted_as_coalesced(self):
        """The old code credited a failed-and-split batch with
        ``coalesced_requests`` even though nobody was served by the
        shared call, and never counted the per-request retries."""
        stats, outcomes = self._run_controlled_batch(poison_index=2)
        assert stats.requests == 5
        assert stats.batches == 2  # attempts, success or not
        assert stats.batches == (stats.size_flushes
                                 + stats.deadline_flushes
                                 + stats.close_flushes)
        # The poisoned batch was split: nobody was served coalesced,
        # four singleton retries were issued, exactly one failed.
        assert stats.coalesced_requests == 0
        assert stats.isolation_splits == 1
        assert stats.retried_requests == 4
        assert stats.failed_requests == 1
        kinds = [kind for kind, _ in outcomes]
        assert kinds.count("error") == 1
        assert kinds[3] == "error"  # vectors[2] -> outcome index 3
