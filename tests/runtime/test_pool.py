"""Tests for the shared worker pool and batch sharding."""

import pytest

from repro.runtime.pool import (
    MIN_PARALLEL_ELEMENTS,
    cpu_count,
    effective_threads,
    get_pool,
    resolve_threads,
    run_sharded,
    shard_ranges,
)


class TestShardRanges:
    def test_covers_range_contiguously(self):
        ranges = shard_ranges(100, 7)
        assert ranges[0][0] == 0
        assert ranges[-1][1] == 100
        for (_, hi), (lo, _) in zip(ranges, ranges[1:]):
            assert hi == lo

    def test_nearly_equal(self):
        sizes = [hi - lo for lo, hi in shard_ranges(100, 7)]
        assert max(sizes) - min(sizes) <= 1
        assert sum(sizes) == 100

    def test_more_parts_than_items(self):
        ranges = shard_ranges(3, 8)
        assert len(ranges) == 3
        assert all(hi - lo == 1 for lo, hi in ranges)

    def test_single_part(self):
        assert shard_ranges(5, 1) == [(0, 5)]


class TestResolveThreads:
    def test_none_and_one_are_serial(self):
        assert resolve_threads(None) == 1
        assert resolve_threads(1) == 1

    def test_zero_means_per_cpu(self):
        assert resolve_threads(0) == cpu_count()

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            resolve_threads(-2)


class TestEffectiveThreads:
    def test_small_batches_stay_serial(self):
        # Fewer total elements than the floor: no parallel dispatch.
        assert effective_threads(4, rows=8, row_len=16) == 1

    def test_large_batches_parallelize(self):
        rows = MIN_PARALLEL_ELEMENTS  # row_len 16 -> way past the floor
        assert effective_threads(4, rows=rows, row_len=16) == 4

    def test_clamped_by_rows_per_thread(self):
        # Enough elements but only 4 rows: at most 2 workers.
        assert effective_threads(8, rows=4, row_len=MIN_PARALLEL_ELEMENTS) == 2


class TestRunSharded:
    def test_all_rows_processed_once(self):
        hits = [0] * 97
        run_sharded(lambda lo, hi: [hits.__setitem__(i, hits[i] + 1)
                                    for i in range(lo, hi)],
                    97, 4)
        assert hits == [1] * 97

    def test_single_shard_runs_inline(self):
        import threading

        seen = []
        run_sharded(lambda lo, hi: seen.append(threading.current_thread()),
                    4, 1)
        assert seen == [threading.main_thread()]

    def test_exception_propagates(self):
        def work(lo, hi):
            if lo > 0:
                raise RuntimeError("shard failed")

        with pytest.raises(RuntimeError, match="shard failed"):
            run_sharded(work, 100, 4)

    def test_pool_grows_and_is_reused(self):
        pool_a = get_pool(2)
        pool_b = get_pool(2)
        assert pool_a is pool_b
        pool_c = get_pool(3)
        assert pool_c is get_pool(2)  # bigger pool serves smaller asks
