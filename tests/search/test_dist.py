"""Distributed search == serial search, including under injected chaos.

The contract under test is determinism: given identical per-candidate
timings, :func:`distributed_search_small_sizes` must crown byte-for-
byte the winners :func:`search_small_sizes` crowns — regardless of
worker count, injected worker kills, a truncated journal, or poisoned
candidates.  Timings are stubbed with a deterministic hash of
(candidate SPL, threshold) so both paths see the same "measurements"
without compiling anything; the forked workers, leases, journal and
quarantine underneath are all real.
"""

from __future__ import annotations

import hashlib
import os
import re
import signal
from types import SimpleNamespace

import pytest

from repro.perfeval.sandbox import Quarantine
from repro.search.dist import distributed_search_small_sizes
from repro.search.dp import search_small_sizes
from repro.search.queue import (
    QueuePolicy,
    SearchChaos,
    TaskJournal,
    queue_supported,
)
from repro.wisdom.store import WisdomStore

needs_fork = pytest.mark.skipif(
    not queue_supported(),
    reason="the distributed search needs POSIX fork")

SIZES = (2, 4, 8, 16)

FAST = QueuePolicy(workers=3, lease_timeout_s=10.0,
                   heartbeat_interval_s=0.02, heartbeat_timeout_s=5.0,
                   max_attempts=3, backoff_base_s=0.01,
                   backoff_max_s=0.05)


def fake_seconds(spl: str, threshold) -> float:
    """Deterministic pseudo-timing shared by both search paths."""
    digest = hashlib.sha256(f"{threshold}:{spl}".encode()).digest()
    return 1.0 + int.from_bytes(digest[:4], "big") / 2 ** 32


def stub_task_runner(payload: dict) -> dict:
    return {"ok": True,
            "seconds": fake_seconds(payload["spl"], payload["threshold"]),
            "mflops": 1.0}


def fake_measure_formulas(compiler, formulas, name_prefix="", **kwargs):
    """Serial-side stub; the threshold is recoverable from the measure
    name prefix (``spl_fft{n}_b{threshold}_c`` when sweeping)."""
    match = re.search(r"_b(\d+)_c$", name_prefix)
    threshold = int(match.group(1)) if match else None
    return [SimpleNamespace(formula=formula,
                            seconds=fake_seconds(formula.to_spl(),
                                                 threshold),
                            mflops=1.0, ok=True, failure=None)
            for formula in formulas]


def serial_reference(monkeypatch, *, sizes=SIZES, **kwargs):
    monkeypatch.setattr("repro.search.dp.measure_formulas",
                        fake_measure_formulas)
    return search_small_sizes(sizes, **kwargs)


def assert_same_winners(serial, dist):
    assert set(serial) == set(dist)
    for n in serial:
        assert serial[n].formula.to_spl() == dist[n].formula.to_spl(), n
        assert serial[n].seconds == pytest.approx(dist[n].seconds), n
        assert serial[n].unroll_threshold == dist[n].unroll_threshold, n


@needs_fork
class TestDistributedEqualsSerial:
    def test_identical_winners_no_sweep(self, monkeypatch):
        serial = serial_reference(monkeypatch)
        dist = distributed_search_small_sizes(
            SIZES, policy=FAST, quarantine=Quarantine(),
            task_runner=stub_task_runner, chaos=SearchChaos())
        assert_same_winners(serial, dist)
        for n in dist:
            assert dist[n].candidates_tried == serial[n].candidates_tried

    def test_identical_winners_with_threshold_sweep(self, monkeypatch):
        sweep = (8, 16)
        serial = serial_reference(monkeypatch, unroll_thresholds=sweep)
        dist = distributed_search_small_sizes(
            SIZES, policy=FAST, quarantine=Quarantine(),
            unroll_thresholds=sweep, task_runner=stub_task_runner,
            chaos=SearchChaos())
        assert_same_winners(serial, dist)

    def test_chaos_kills_lose_and_duplicate_nothing(self, monkeypatch,
                                                    tmp_path):
        # ~40% of task keys SIGKILL their worker on the first attempt.
        # The leases must retry every one of them: same winners as the
        # serial search, and the journal holds exactly one record per
        # task key (zero lost, zero duplicated).
        serial = serial_reference(monkeypatch)
        journal_path = tmp_path / "journal.jsonl"
        chaos = SearchChaos(kill_rate=0.4, kill_attempts=1, seed=5)
        dist = distributed_search_small_sizes(
            SIZES, policy=FAST, quarantine=Quarantine(),
            journal_path=str(journal_path),
            task_runner=stub_task_runner, chaos=chaos)
        assert_same_winners(serial, dist)
        replay = TaskJournal(journal_path).replay()
        expected_tasks = sum(serial[n].candidates_tried for n in serial)
        assert len(replay.results) == expected_tasks
        assert replay.duplicate_keys == 0
        assert replay.corrupt_lines == 0
        # The chaos actually fired: at least one doomed key existed.
        doomed = [key for key in replay.results
                  if chaos.should_kill(key, 1)]
        assert doomed, "chaos seed produced no kills; test is vacuous"

    def test_truncated_journal_still_converges(self, monkeypatch,
                                               tmp_path):
        serial = serial_reference(monkeypatch)
        journal_path = tmp_path / "journal.jsonl"
        distributed_search_small_sizes(
            SIZES, policy=FAST, quarantine=Quarantine(),
            journal_path=str(journal_path),
            task_runner=stub_task_runner, chaos=SearchChaos())
        # A coordinator crash mid-append: chop the journal mid-record.
        text = journal_path.read_text()
        journal_path.write_text(text[: int(len(text) * 0.6)])
        dist = distributed_search_small_sizes(
            SIZES, policy=FAST, quarantine=Quarantine(),
            journal_path=str(journal_path),
            task_runner=stub_task_runner, chaos=SearchChaos())
        assert_same_winners(serial, dist)

    def test_complete_journal_replays_without_running_tasks(self,
                                                            tmp_path):
        journal_path = tmp_path / "journal.jsonl"
        distributed_search_small_sizes(
            SIZES, policy=FAST, quarantine=Quarantine(),
            journal_path=str(journal_path),
            task_runner=stub_task_runner, chaos=SearchChaos())
        witness = tmp_path / "ran"

        def tattling_runner(payload):
            with open(witness, "a") as handle:
                handle.write(payload["spl"] + "\n")
            return stub_task_runner(payload)

        distributed_search_small_sizes(
            SIZES, policy=FAST, quarantine=Quarantine(),
            journal_path=str(journal_path),
            task_runner=tattling_runner, chaos=SearchChaos())
        assert not witness.exists()  # everything came from the journal

    def test_wisdom_replay_skips_solved_sizes(self, tmp_path):
        wisdom = WisdomStore(tmp_path / "wisdom.json")
        first = distributed_search_small_sizes(
            SIZES, policy=FAST, quarantine=Quarantine(),
            wisdom=wisdom, task_runner=stub_task_runner,
            chaos=SearchChaos())
        again = distributed_search_small_sizes(
            SIZES, policy=FAST, quarantine=Quarantine(),
            wisdom=wisdom, task_runner=stub_task_runner,
            chaos=SearchChaos())
        for n in again:
            assert again[n].from_wisdom, n
            assert again[n].formula.to_spl() == first[n].formula.to_spl()


def _poison_index_one(payload: dict) -> dict:
    if payload["index"] == 1:
        os.kill(os.getpid(), signal.SIGKILL)
    return stub_task_runner(payload)


@needs_fork
class TestPoisonedCandidates:
    def test_repeat_killer_quarantined_search_still_wins(self):
        quarantine = Quarantine()
        policy = QueuePolicy(workers=2, lease_timeout_s=10.0,
                             heartbeat_interval_s=0.02,
                             heartbeat_timeout_s=5.0, max_attempts=2,
                             backoff_base_s=0.01, backoff_max_s=0.05)
        dist = distributed_search_small_sizes(
            (8, 16), policy=policy, quarantine=quarantine,
            task_runner=_poison_index_one, chaos=SearchChaos())
        # The search survived the killer candidates...
        assert set(dist) == {8, 16}
        for n in (8, 16):
            assert dist[n].candidates_failed >= 1, n
        # ...and they are structured quarantine entries, not retries
        # forever: every poisoned key burned exactly max_attempts.
        stats = quarantine.stats()
        assert stats["kinds"].get("crash", 0) >= 1
        for failure in quarantine.entries.values():
            assert failure.attempts == policy.max_attempts
