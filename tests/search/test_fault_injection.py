"""End-to-end fault injection: hostile codelets through the real search.

A :class:`HostileCompiler` swaps the generated C of *targeted*
candidates for code that segfaults, hangs forever, or emits NaN —
exactly what a miscompiled codelet would do.  The small-size search
must complete anyway: hostile candidates are measured in sandboxed
workers, reported as structured failures, quarantined, and the winner
is picked from the survivors (and still computes a correct DFT).

This is the suite the CI fault-injection job runs under
``SPL_FAULT_INJECT=1``; it skips (never fails) without a C compiler.
"""

import dataclasses

import numpy as np
import pytest

from repro.core.compiler import CompilerOptions, SplCompiler
from repro.core.errors import SplError
from repro.core.nodes import fourier
from repro.formulas import to_matrix
from repro.perfeval.sandbox import Quarantine, SandboxPolicy, \
    sandbox_supported
from repro.search.dp import search_small_sizes
from tests.conftest import HAS_CC

requires_sandbox = pytest.mark.skipif(
    not (HAS_CC and sandbox_supported()),
    reason="needs a C compiler and POSIX process isolation",
)

# Hostile codelet bodies, keyed by failure mode; ``{name}`` is filled
# with the candidate's routine name so the sandbox loads the saboteur
# instead of the real codelet.
HOSTILE = {
    "crash": (
        "void {name}(double *y, const double *x)\n"
        "{{\n"
        "    volatile double *p = (volatile double *)1;\n"
        "    p[0] = x[0];\n"
        "    y[0] = p[0];\n"
        "}}\n"
    ),
    "hang": (
        "void {name}(double *y, const double *x)\n"
        "{{\n"
        "    volatile int keep = 1;\n"
        "    while (keep) {{ }}\n"
        "    y[0] = x[0];\n"
        "}}\n"
    ),
    "nan": (
        "void {name}(double *y, const double *x)\n"
        "{{\n"
        "    volatile double zero = 0.0;\n"
        "    int i;\n"
        "    for (i = 0; i < 16; i++) y[i] = zero / zero;\n"
        "    (void)x;\n"
        "}}\n"
    ),
}


class HostileCompiler(SplCompiler):
    """An SplCompiler that sabotages the C source of chosen candidates.

    ``hostile`` maps routine names (``spl_fft8_c0``...) to a failure
    mode from :data:`HOSTILE`.  Only the *source* is replaced — the
    i-code program (sizes, datatype) stays real, so every layer above
    treats the candidate as ordinary until its native code runs.
    """

    def __init__(self, options=None, *, hostile=None):
        super().__init__(options)
        self.hostile = dict(hostile or {})
        self.injected: list[str] = []

    def compile_formula(self, formula, name="spl_0", **kwargs):
        routine = super().compile_formula(formula, name, **kwargs)
        mode = self.hostile.get(routine.name)
        if mode is None:
            return routine
        self.injected.append(routine.name)
        return dataclasses.replace(
            routine, source=HOSTILE[mode].format(name=routine.name)
        )


def hostile_compiler(hostile):
    return HostileCompiler(
        CompilerOptions(unroll=True, optimize="default",
                        datatype="complex", codetype="real", language="c"),
        hostile=hostile,
    )


def fast_policy():
    # A short hang timeout keeps the suite quick; hangs are
    # deterministic, so no retry ever re-waits it.
    return SandboxPolicy(timeout=0.75, backoff=0.0)


@requires_sandbox
class TestHostileSearch:
    def test_search_survives_crash_hang_and_nan(self):
        # n=8 enumerates 4 candidates (spl_fft8_c0..c3); sabotage the
        # first three with one failure mode each and let c3 win.
        compiler = hostile_compiler({
            "spl_fft8_c0": "crash",
            "spl_fft8_c1": "hang",
            "spl_fft8_c2": "nan",
        })
        quarantine = Quarantine()
        results = search_small_sizes(
            (8,), compiler=compiler, min_time=0.001,
            sandbox=fast_policy(), quarantine=quarantine,
        )
        result = results[8]
        assert sorted(compiler.injected)[:3] == [
            "spl_fft8_c0", "spl_fft8_c1", "spl_fft8_c2"
        ]
        assert result.candidates_failed == 3
        assert result.candidates_tried == 4
        # Every failure mode landed in the quarantine.
        kinds = quarantine.stats()["kinds"]
        assert kinds == {"crash": 1, "hang": 1, "nan": 1}
        # The surviving winner still computes the 8-point DFT.
        np.testing.assert_allclose(
            to_matrix(result.formula), to_matrix(fourier(8)), atol=1e-9
        )
        assert np.isfinite(result.seconds)
        assert result.mflops > 0

    def test_quarantine_suppresses_remeasurement(self):
        hostile = {"spl_fft8_c0": "crash"}
        quarantine = Quarantine()
        first = search_small_sizes(
            (8,), compiler=hostile_compiler(hostile), min_time=0.001,
            sandbox=fast_policy(), quarantine=quarantine,
        )
        assert first[8].candidates_failed == 1
        skips_before = quarantine.skips
        # A second search generates byte-identical hostile source, so
        # its plan key hits the quarantine instead of re-crashing.
        second = search_small_sizes(
            (8,), compiler=hostile_compiler(hostile), min_time=0.001,
            sandbox=fast_policy(), quarantine=quarantine,
        )
        assert second[8].candidates_failed == 1
        assert quarantine.skips > skips_before

    def test_all_candidates_hostile_raises_with_details(self):
        # n=4 has exactly 2 candidates; kill both and the search must
        # raise a descriptive SplError, not hang or crash.
        compiler = hostile_compiler({
            "spl_fft4_c0": "crash",
            "spl_fft4_c1": "nan",
        })
        with pytest.raises(SplError, match="no measurable candidate"):
            search_small_sizes(
                (4,), compiler=compiler, min_time=0.001,
                sandbox=fast_policy(), quarantine=Quarantine(),
            )
