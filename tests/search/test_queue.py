"""The fault-tolerant search queue: leases, journal, chaos, poison.

Unit tests pin the pure pieces (chaos determinism, backoff shape,
journal replay over damaged files); coordinator tests run real forked
workers and inject every failure mode the queue promises to absorb —
worker SIGKILL mid-task, task functions that raise, tasks that wedge
past their lease — and assert the exactly-once contract: every key
lands in ``results`` or ``failures``, never both, never twice.
"""

from __future__ import annotations

import json
import os
import signal
import time

import pytest

from repro.perfeval.sandbox import Quarantine
from repro.search.queue import (
    JournalReplay,
    QueuePolicy,
    SearchChaos,
    TaskJournal,
    TaskQueueCoordinator,
    queue_supported,
)

needs_fork = pytest.mark.skipif(
    not queue_supported(),
    reason="the distributed queue needs POSIX fork")

#: Fast knobs so a whole coordinator test settles in well under a
#: second even when every task is retried.
FAST = QueuePolicy(workers=2, lease_timeout_s=10.0,
                   heartbeat_interval_s=0.02, heartbeat_timeout_s=5.0,
                   max_attempts=3, backoff_base_s=0.01,
                   backoff_max_s=0.05)


class TestSearchChaos:
    def test_spec_round_trip(self):
        chaos = SearchChaos.from_spec("kill=0.3,attempts=2,seed=7")
        assert chaos.kill_rate == 0.3
        assert chaos.kill_attempts == 2
        assert chaos.seed == 7
        assert SearchChaos.from_spec(chaos.to_spec()) == chaos

    def test_bad_specs_raise(self):
        for spec in ("kill", "kill=lots", "boom=1", "kill=1.5"):
            with pytest.raises(ValueError):
                SearchChaos.from_spec(spec)

    def test_doomed_set_is_deterministic(self):
        chaos = SearchChaos(kill_rate=0.5, seed=3)
        keys = [f"key-{i}" for i in range(200)]
        first = {k for k in keys if chaos.should_kill(k, 1)}
        second = {k for k in keys if chaos.should_kill(k, 1)}
        assert first == second
        assert 0 < len(first) < len(keys)  # a rate, not all-or-nothing

    def test_kills_stop_after_attempt_cap(self):
        chaos = SearchChaos(kill_rate=1.0, kill_attempts=2, seed=0)
        assert chaos.should_kill("k", 1)
        assert chaos.should_kill("k", 2)
        assert not chaos.should_kill("k", 3)

    def test_from_env(self):
        assert SearchChaos.from_env({}) is None
        chaos = SearchChaos.from_env(
            {"SPL_SEARCH_CHAOS": "kill=1.0,seed=2"})
        assert chaos is not None and chaos.kill_rate == 1.0


class TestQueuePolicy:
    def test_backoff_grows_and_caps(self):
        policy = QueuePolicy(backoff_base_s=0.1, backoff_multiplier=2.0,
                             backoff_max_s=0.35)
        assert policy.backoff_s(1) == pytest.approx(0.1)
        assert policy.backoff_s(2) == pytest.approx(0.2)
        assert policy.backoff_s(3) == pytest.approx(0.35)
        assert policy.backoff_s(9) == pytest.approx(0.35)

    def test_rejects_bad_knobs(self):
        with pytest.raises(ValueError):
            QueuePolicy(workers=0)
        with pytest.raises(ValueError):
            QueuePolicy(max_attempts=0)


class TestTaskJournal:
    def test_append_replay_round_trip(self, tmp_path):
        journal = TaskJournal(tmp_path / "journal.jsonl")
        assert journal.append("a", {"ok": True, "seconds": 1.0})
        assert journal.append("b", {"ok": False, "kind": "nan"})
        replay = journal.replay()
        assert replay.results == {"a": {"ok": True, "seconds": 1.0},
                                  "b": {"ok": False, "kind": "nan"}}
        assert replay.corrupt_lines == 0

    def test_missing_file_replays_empty(self, tmp_path):
        replay = TaskJournal(tmp_path / "nope.jsonl").replay()
        assert replay == JournalReplay()

    def test_truncated_tail_line_is_skipped(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        journal = TaskJournal(path)
        journal.append("a", 1)
        journal.append("b", 2)
        text = path.read_text()
        # Cut the second record mid-line: a crash during append.
        path.write_text(text[: len(text) - 10])
        replay = TaskJournal(path).replay()
        assert replay.results == {"a": 1}
        assert replay.corrupt_lines == 1

    def test_tampered_line_fails_its_checksum(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        journal = TaskJournal(path)
        journal.append("a", {"seconds": 5.0})
        record = json.loads(path.read_text())
        record["result"]["seconds"] = 0.001  # the tampering
        path.write_text(json.dumps(record) + "\n")
        replay = TaskJournal(path).replay()
        assert replay.results == {}
        assert replay.corrupt_lines == 1

    def test_duplicate_keys_keep_the_first(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        journal = TaskJournal(path)
        journal.append("a", 1)
        journal.append("a", 2)
        replay = TaskJournal(path).replay()
        assert replay.results == {"a": 1}
        assert replay.duplicate_keys == 1

    def test_unwritable_path_counts_never_raises(self, tmp_path):
        journal = TaskJournal(tmp_path)  # a directory
        assert not journal.append("a", 1)
        assert journal.append_errors == 1


# ---------------------------------------------------------------------------
# Coordinator behavior with real forked workers.
# ---------------------------------------------------------------------------


def _double(payload):
    return {"value": payload["x"] * 2}


def _crash_on_marked(payload):
    if payload.get("crash"):
        os.kill(os.getpid(), signal.SIGKILL)
    return {"value": payload["x"]}


def _fail_until(payload):
    """Raise until the cross-process counter file has enough lines."""
    counter = payload["counter"]
    with open(counter, "a") as handle:
        handle.write("x\n")
    with open(counter) as handle:
        attempts = len(handle.readlines())
    if attempts < payload["succeed_on"]:
        raise RuntimeError(f"flaky (attempt {attempts})")
    return {"value": "recovered"}


def _always_raise(payload):
    raise ValueError("permanently broken")


def _wedge_on_marked(payload):
    if payload.get("wedge"):
        time.sleep(3600)
    return {"value": payload["x"]}


@needs_fork
class TestCoordinator:
    def test_all_tasks_complete_exactly_once(self):
        coordinator = TaskQueueCoordinator(
            _double, policy=FAST, quarantine=Quarantine())
        tasks = {f"k{i}": {"x": i} for i in range(12)}
        outcome = coordinator.run(tasks)
        assert outcome.results == {
            f"k{i}": {"value": 2 * i} for i in range(12)}
        assert outcome.failures == {}
        assert outcome.stats["completed"] == 12
        assert outcome.stats.get("poisoned", 0) == 0

    def test_chaos_kill_is_retried_to_success(self):
        # Every key's first attempt SIGKILLs its worker; the lease
        # reclaims it and attempt 2 succeeds — zero lost results.
        chaos = SearchChaos(kill_rate=1.0, kill_attempts=1, seed=1)
        coordinator = TaskQueueCoordinator(
            _double, policy=FAST, quarantine=Quarantine(), chaos=chaos)
        tasks = {f"k{i}": {"x": i} for i in range(6)}
        outcome = coordinator.run(tasks)
        assert set(outcome.results) == set(tasks)
        assert outcome.failures == {}
        assert outcome.stats["worker_deaths"] >= 6
        assert outcome.stats["reclaims_dead"] >= 6
        assert outcome.stats["retries"] >= 6

    def test_repeat_killer_is_poisoned_and_quarantined(self):
        quarantine = Quarantine()
        coordinator = TaskQueueCoordinator(
            _crash_on_marked, policy=FAST, quarantine=quarantine)
        tasks = {"good": {"x": 1}, "poison": {"x": 2, "crash": True}}
        outcome = coordinator.run(tasks)
        assert outcome.results == {"good": {"value": 1}}
        failure = outcome.failures["poison"]
        assert failure.kind == "crash"
        assert failure.attempts == FAST.max_attempts
        assert "poison" in quarantine
        # A second run skips the poisoned key without forking for it.
        again = TaskQueueCoordinator(
            _crash_on_marked, policy=FAST, quarantine=quarantine)
        outcome2 = again.run(tasks)
        assert "poison" in outcome2.failures
        assert outcome2.stats["quarantine_skips"] == 1

    def test_task_error_is_retried_then_succeeds(self, tmp_path):
        counter = str(tmp_path / "attempts")
        coordinator = TaskQueueCoordinator(
            _fail_until, policy=FAST, quarantine=Quarantine())
        outcome = coordinator.run(
            {"flaky": {"counter": counter, "succeed_on": 2}})
        assert outcome.results == {"flaky": {"value": "recovered"}}
        assert outcome.stats["task_errors"] == 1
        assert outcome.stats["retries"] == 1

    def test_permanent_task_error_is_poisoned_with_cause(self):
        coordinator = TaskQueueCoordinator(
            _always_raise, policy=FAST, quarantine=Quarantine())
        outcome = coordinator.run({"broken": {}})
        failure = outcome.failures["broken"]
        assert failure.kind == "error"
        assert "permanently broken" in failure.detail
        assert outcome.stats["task_errors"] == FAST.max_attempts

    def test_wedged_task_is_killed_at_lease_expiry(self):
        policy = QueuePolicy(workers=2, lease_timeout_s=0.3,
                             heartbeat_interval_s=0.02,
                             heartbeat_timeout_s=5.0, max_attempts=1,
                             backoff_base_s=0.01)
        coordinator = TaskQueueCoordinator(
            _wedge_on_marked, policy=policy, quarantine=Quarantine())
        start = time.monotonic()
        outcome = coordinator.run(
            {"ok": {"x": 1}, "stuck": {"wedge": True}})
        elapsed = time.monotonic() - start
        assert outcome.results == {"ok": {"value": 1}}
        assert outcome.failures["stuck"].kind == "hang"
        assert outcome.stats["reclaims_wedged"] == 1
        assert elapsed < 30  # the 3600s sleep never ran to completion

    def test_journal_makes_reruns_free(self, tmp_path):
        journal_path = tmp_path / "journal.jsonl"
        tasks = {f"k{i}": {"x": i} for i in range(5)}
        first = TaskQueueCoordinator(
            _double, policy=FAST, journal=TaskJournal(journal_path),
            quarantine=Quarantine())
        outcome1 = first.run(tasks)
        assert outcome1.stats["completed"] == 5
        # A "restarted coordinator": same journal, fresh everything.
        second = TaskQueueCoordinator(
            _double, policy=FAST, journal=TaskJournal(journal_path),
            quarantine=Quarantine())
        outcome2 = second.run(tasks)
        assert outcome2.results == outcome1.results
        assert outcome2.stats["journal_replayed"] == 5
        assert outcome2.stats.get("completed", 0) == 0
        assert outcome2.stats.get("workers_spawned", 0) == 0

    def test_truncated_journal_resumes_partial(self, tmp_path):
        journal_path = tmp_path / "journal.jsonl"
        tasks = {f"k{i}": {"x": i} for i in range(4)}
        TaskQueueCoordinator(
            _double, policy=FAST, journal=TaskJournal(journal_path),
            quarantine=Quarantine()).run(tasks)
        # A crash mid-append: the last record is cut in half.
        text = journal_path.read_text()
        journal_path.write_text(text[: len(text) - 15])
        resumed = TaskQueueCoordinator(
            _double, policy=FAST, journal=TaskJournal(journal_path),
            quarantine=Quarantine())
        outcome = resumed.run(tasks)
        assert outcome.results == {
            f"k{i}": {"value": 2 * i} for i in range(4)}
        assert outcome.stats["journal_replayed"] == 3
        assert outcome.stats["journal_corrupt_lines"] == 1
        assert outcome.stats["completed"] == 1  # only the lost key ran
