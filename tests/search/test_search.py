"""Tests for the search engine (small-size DP and large-size keep-3 DP).

Search tests use tiny candidate caps and sizes so the suite stays fast;
timing *quality* is exercised by the benchmarks, correctness here.
"""

import numpy as np
import pytest

from repro.core.compiler import CompilerOptions, SplCompiler
from repro.core.nodes import fourier
from repro.perfeval.runner import build_executable
from repro.search.dp import search_small_sizes
from repro.search.large import LargeSearch, register_codelet_template
from repro.search.measure import measure_formula
from tests.conftest import HAS_CC, requires_cc


@pytest.fixture(scope="module")
def small_results():
    sizes = (2, 4, 8) if not HAS_CC else (2, 4, 8, 16)
    return search_small_sizes(sizes, max_candidates=4, min_time=0.001)


class TestMeasure:
    def test_measurement_has_positive_time(self):
        compiler = SplCompiler(CompilerOptions(
            unroll=True, codetype="real", language="c"))
        measured = measure_formula(compiler, fourier(4), "m4",
                                   min_time=0.001)
        assert measured.seconds > 0
        assert measured.mflops > 0

    def test_measured_code_is_correct(self):
        compiler = SplCompiler(CompilerOptions(
            unroll=True, codetype="real", language="c"))
        measured = measure_formula(compiler, fourier(4), "m4b",
                                   min_time=0.001)
        x = np.random.default_rng(1).standard_normal(4) * (1 + 1j)
        np.testing.assert_allclose(measured.executable.apply(x),
                                   np.fft.fft(x), atol=1e-10)


class TestSmallSearch:
    def test_results_for_every_size(self, small_results):
        assert set(small_results) >= {2, 4, 8}

    def test_best_formulas_are_correct(self, small_results):
        from repro.formulas import to_matrix

        for n, result in small_results.items():
            np.testing.assert_allclose(
                to_matrix(result.formula),
                to_matrix(fourier(n)),
                atol=1e-9,
            )

    def test_candidate_counts_recorded(self, small_results):
        assert small_results[8].candidates_tried >= 2

    def test_describe(self, small_results):
        assert "pseudo-MFlops" in small_results[8].describe()


class TestCodeletTemplates:
    def test_direct_definition_not_registered(self):
        compiler = SplCompiler()
        before = len(compiler.templates)
        register_codelet_template(compiler, 4, fourier(4))
        assert len(compiler.templates) == before

    def test_factored_formula_registered_and_used(self):
        from repro.formulas.factorization import ct_dit

        compiler = SplCompiler(CompilerOptions(language="python"))
        register_codelet_template(compiler, 4, ct_dit(2, 2))
        routine = compiler.compile_formula("(F 4)", "f4")
        x = np.random.default_rng(2).standard_normal(4) * (1 + 1j)
        np.testing.assert_allclose(routine.run(list(x)), np.fft.fft(x),
                                   atol=1e-10)

    def test_codelet_expansion_is_unrolled(self):
        from repro.core.icode import Loop
        from repro.formulas.factorization import ct_dit

        compiler = SplCompiler(CompilerOptions(language="python"))
        register_codelet_template(compiler, 4, ct_dit(2, 2))
        routine = compiler.compile_formula("(tensor (I 2) (F 4))", "t")
        outer = [i for i in routine.program.body if isinstance(i, Loop)]
        assert len(outer) == 1
        assert not any(isinstance(i, Loop) for i in outer[0].body)


class TestSearchRobustness:
    """Degenerate candidate spaces must not crash the DP search."""

    @staticmethod
    def _stub_measure(compiler, formulas, **kwargs):
        from types import SimpleNamespace

        return [
            SimpleNamespace(formula=formula, seconds=0.001 * (i + 1),
                            mflops=1.0)
            for i, formula in enumerate(formulas)
        ]

    def test_empty_candidate_space_falls_back_to_direct(self, monkeypatch):
        import repro.search.dp as dp

        monkeypatch.setattr(dp, "enumerate_ct_formulas",
                            lambda *args, **kwargs: [])
        monkeypatch.setattr(dp, "measure_formulas", self._stub_measure)
        results = dp.search_small_sizes((7,))
        assert results[7].formula == fourier(7)
        assert results[7].candidates_tried == 1

    def test_lazy_candidate_iterables_are_counted(self, monkeypatch):
        import repro.search.dp as dp

        monkeypatch.setattr(
            dp, "enumerate_ct_formulas",
            lambda n, **kwargs: iter([fourier(n)]),  # a generator, no len()
        )
        monkeypatch.setattr(dp, "measure_formulas", self._stub_measure)
        results = dp.search_small_sizes((4,))
        assert results[4].candidates_tried == 1

    def test_unmeasurable_size_raises_descriptive_error(self, monkeypatch):
        import repro.search.dp as dp
        from repro.core.errors import SplError

        monkeypatch.setattr(dp, "measure_formulas",
                            lambda *args, **kwargs: [])
        with pytest.raises(SplError, match="no measurable candidate"):
            dp.search_small_sizes((4,))


@requires_cc
class TestLargeSearch:
    def test_search_and_correctness(self, small_results):
        search = LargeSearch(small_results, keep=2, max_codelet=8,
                             radix_log2_range=(1, 2, 3), min_time=0.001)
        candidate = search.best_candidate(64)
        routine = search.compiler.compile_formula(candidate.formula,
                                                  "check64", language="c")
        executable = build_executable(routine)
        x = np.random.default_rng(3).standard_normal(64) * (1 + 1j)
        np.testing.assert_allclose(executable.apply(x), np.fft.fft(x),
                                   atol=1e-9)

    def test_keeps_k_best(self, small_results):
        search = LargeSearch(small_results, keep=2, max_codelet=8,
                             radix_log2_range=(1, 2, 3), min_time=0.001)
        search.search_up_to(32)
        assert 1 <= len(search.best[32]) <= 2
        times = [c.seconds for c in search.best[32]]
        assert times == sorted(times)

    def test_rejects_non_power_of_two(self, small_results):
        search = LargeSearch(small_results, max_codelet=8)
        with pytest.raises(ValueError):
            search.search_up_to(48)
