"""Protocol abuse under concurrent load.

The isolation contract of the server: a misbehaving connection —
disconnecting mid-request, sending truncated or oversized frames,
or plain garbage — may only hurt *itself*.  Every test here runs a
background stream of well-formed traffic on separate connections
while one connection abuses the protocol, and asserts the good
traffic keeps getting correct answers.
"""

from __future__ import annotations

import asyncio
import socket
import struct
import threading
import time

import numpy as np
import pytest

from repro.serve import AsyncSplClient, SplClient
from repro.serve.protocol import MAX_HEADER_BYTES, encode_frame

from tests.serve.test_server import (
    FFT16,
    ServerHarness,
    _complex_vec,
    numpy_router,
)


class _GoodTraffic:
    """Continuous correct requests on their own connections, with
    every answer checked against the numpy oracle."""

    def __init__(self, host: str, port: int, connections: int = 2):
        self.host, self.port = host, port
        self.connections = connections
        self.completed = 0
        self.failures: list[BaseException] = []
        self._stop = threading.Event()
        self._threads = [
            threading.Thread(target=self._spin, args=(seed,),
                             daemon=True)
            for seed in range(connections)
        ]

    def _spin(self, seed: int) -> None:
        x = _complex_vec(16, seed=seed)
        expected = np.fft.fft(x)
        try:
            with SplClient(self.host, self.port,
                           request_timeout=10.0) as client:
                while not self._stop.is_set():
                    y = client.transform("fft", x)
                    np.testing.assert_allclose(y, expected,
                                               atol=1e-9)
                    self.completed += 1
        except BaseException as exc:  # noqa: BLE001 - surfaced below
            self.failures.append(exc)

    def __enter__(self) -> "_GoodTraffic":
        for thread in self._threads:
            thread.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self._stop.set()
        for thread in self._threads:
            thread.join(timeout=30)

    def assert_healthy(self, at_least: int = 1,
                       within_s: float = 20.0) -> None:
        deadline = time.monotonic() + within_s
        while (self.completed < at_least and not self.failures
               and time.monotonic() < deadline):
            time.sleep(0.01)
        assert not self.failures, self.failures
        assert self.completed >= at_least


def _raw_connect(host: str, port: int) -> socket.socket:
    sock = socket.create_connection((host, port), timeout=10)
    sock.settimeout(10)
    return sock


def _recv_frame_header(sock: socket.socket) -> dict:
    import json

    def read_exactly(n: int) -> bytes:
        buf = b""
        while len(buf) < n:
            chunk = sock.recv(n - len(buf))
            if not chunk:
                raise ConnectionError("EOF mid-frame")
            buf += chunk
        return buf

    (header_len,) = struct.unpack(">I", read_exactly(4))
    header = json.loads(read_exactly(header_len))
    read_exactly(int(header.get("payload_bytes", 0)))
    return header


class TestAbuseIsolation:
    def _harness(self):
        return ServerHarness(numpy_router(), warm=[FFT16])

    def test_disconnect_mid_request_leaves_others_undisturbed(self):
        with self._harness() as harness, \
                _GoodTraffic(harness.host, harness.port) as traffic:
            for attempt in range(5):
                sock = _raw_connect(harness.host, harness.port)
                frame = encode_frame(
                    {"op": "transform", "transform": "fft", "n": 16,
                     "dtype": "complex128"},
                    _complex_vec(16).tobytes())
                # Send only part of the request, then vanish.
                sock.sendall(frame[:len(frame) // 2])
                sock.close()
                time.sleep(0.05)
            time.sleep(0.2)
            traffic.assert_healthy(at_least=5)

    def test_garbage_header_errors_only_that_connection(self):
        with self._harness() as harness, \
                _GoodTraffic(harness.host, harness.port) as traffic:
            sock = _raw_connect(harness.host, harness.port)
            try:
                # Valid length prefix, invalid JSON body.
                junk = b"\x00not json at all{{{"
                sock.sendall(struct.pack(">I", len(junk)) + junk)
                header = _recv_frame_header(sock)
                assert header["status"] == "error"
                assert header["code"] == "bad_request"
                # The server hangs up on unparseable streams; the
                # abusive connection dies, nobody else does.
                assert sock.recv(4096) == b""
            finally:
                sock.close()
            traffic.assert_healthy()

    def test_oversized_header_is_rejected(self):
        with self._harness() as harness, \
                _GoodTraffic(harness.host, harness.port) as traffic:
            sock = _raw_connect(harness.host, harness.port)
            try:
                sock.sendall(struct.pack(">I", MAX_HEADER_BYTES + 1))
                header = _recv_frame_header(sock)
                assert header["status"] == "error"
                assert header["code"] == "bad_request"
            finally:
                sock.close()
            traffic.assert_healthy()

    def test_oversized_payload_declaration_is_rejected(self):
        with self._harness() as harness, \
                _GoodTraffic(harness.host, harness.port) as traffic:
            import json

            sock = _raw_connect(harness.host, harness.port)
            try:
                evil = json.dumps({
                    "op": "transform", "transform": "fft", "n": 16,
                    "dtype": "complex128",
                    "payload_bytes": 1 << 40,
                }).encode()
                sock.sendall(struct.pack(">I", len(evil)) + evil)
                header = _recv_frame_header(sock)
                assert header["status"] == "error"
                assert header["code"] == "bad_request"
            finally:
                sock.close()
            traffic.assert_healthy()

    def test_payload_shorter_than_declared_then_eof(self):
        """A frame whose payload never fully arrives must not wedge
        the server or leak the connection handler."""
        with self._harness() as harness, \
                _GoodTraffic(harness.host, harness.port) as traffic:
            sock = _raw_connect(harness.host, harness.port)
            frame = encode_frame(
                {"op": "transform", "transform": "fft", "n": 16,
                 "dtype": "complex128"},
                _complex_vec(16).tobytes())
            sock.sendall(frame[:-37])  # stop mid-payload
            sock.close()
            time.sleep(0.2)
            traffic.assert_healthy()

    def test_pipelined_garbage_after_valid_request(self):
        """One valid request followed by garbage: the valid one is
        answered before the stream is torn down."""
        with self._harness() as harness, \
                _GoodTraffic(harness.host, harness.port) as traffic:
            sock = _raw_connect(harness.host, harness.port)
            try:
                good = encode_frame(
                    {"op": "ping", "id": 1})
                sock.sendall(good + b"\xff\xff\xff\xff garbage")
                header = _recv_frame_header(sock)
                assert header["status"] == "ok"
            finally:
                sock.close()
            traffic.assert_healthy()

    def test_abuse_storm_under_concurrent_async_load(self):
        """Many abusive connections at once while pipelined async
        traffic runs: all good requests complete correctly."""

        async def scenario(host, port) -> int:
            client = await AsyncSplClient.connect(host, port)
            xs = [_complex_vec(16, seed=s) for s in range(24)]
            try:
                futures = [
                    client.submit(
                        {"op": "transform", "transform": "fft",
                         "n": 16, "dtype": "complex128"},
                        x.tobytes())
                    for x in xs
                ]
                await client.drain()

                def storm() -> None:
                    for k in range(12):
                        try:
                            sock = _raw_connect(host, port)
                            sock.sendall(
                                struct.pack(">I", 64)
                                + b"\x01" * (k % 7))
                            sock.close()
                        except OSError:
                            pass

                thread = threading.Thread(target=storm)
                thread.start()
                results = await asyncio.gather(*futures)
                thread.join(timeout=30)
                for x, (header, y) in zip(xs, results):
                    assert header["status"] == "ok"
                    np.testing.assert_allclose(y, np.fft.fft(x),
                                               atol=1e-9)
                return len(results)
            finally:
                await client.close()

        with self._harness() as harness:
            done = asyncio.run(scenario(harness.host, harness.port))
        assert done == 24
