"""Admission-control unit tests: bounded queue, deadline shedding."""

from __future__ import annotations

import pytest

from repro.serve.admission import AdmissionController
from repro.serve.errors import DeadlineExceeded, Overloaded


class TestBoundedQueue:
    def test_rejects_past_the_limit_with_depth(self):
        ctrl = AdmissionController(queue_limit=3)
        for _ in range(3):
            ctrl.try_admit(0.0)
        with pytest.raises(Overloaded) as info:
            ctrl.try_admit(0.0)
        assert info.value.queue_depth == 3
        assert info.value.queue_limit == 3
        assert ctrl.stats().rejected_overload == 1

    def test_completion_frees_a_slot(self):
        ctrl = AdmissionController(queue_limit=1)
        ctrl.try_admit(0.0)
        with pytest.raises(Overloaded):
            ctrl.try_admit(0.0)
        ctrl.complete(0.0, 0.01)
        ctrl.try_admit(0.02)  # does not raise
        assert ctrl.inflight == 1
        assert ctrl.stats().admitted == 2

    def test_failed_completion_frees_but_does_not_count_completed(self):
        ctrl = AdmissionController(queue_limit=1)
        ctrl.try_admit(0.0)
        ctrl.complete(0.0, 0.01, ok=False)
        stats = ctrl.stats()
        assert stats.failed == 1
        assert stats.completed == 0
        assert ctrl.inflight == 0

    def test_queue_limit_must_be_positive(self):
        with pytest.raises(ValueError):
            AdmissionController(queue_limit=0)


class TestDeadlineShedding:
    def test_expired_deadline_is_shed(self):
        ctrl = AdmissionController()
        with pytest.raises(DeadlineExceeded):
            ctrl.try_admit(10.0, deadline=9.0)
        assert ctrl.stats().shed_deadline == 1
        assert ctrl.inflight == 0

    def test_no_ewma_means_no_prediction(self):
        # Before any completion there is no service-time estimate, so
        # a live deadline is always admitted.
        ctrl = AdmissionController()
        ctrl.try_admit(0.0, deadline=1e-9 + 0.0001)
        assert ctrl.inflight == 1

    def test_predicted_miss_is_shed(self):
        ctrl = AdmissionController(queue_limit=100, batch_hint=1,
                                   ewma_alpha=1.0)
        ctrl.try_admit(0.0)
        ctrl.complete(0.0, 0.1)  # ewma = 100ms
        # 50ms of budget < 100ms predicted service: shed.
        with pytest.raises(DeadlineExceeded):
            ctrl.try_admit(1.0, deadline=1.05)
        # 300ms of budget is plenty: admitted.
        ctrl.try_admit(1.0, deadline=1.3)
        assert ctrl.stats().shed_deadline == 1

    def test_prediction_scales_with_inflight(self):
        ctrl = AdmissionController(queue_limit=100, batch_hint=1,
                                   ewma_alpha=1.0)
        ctrl.try_admit(0.0)
        ctrl.complete(0.0, 0.01)  # ewma = 10ms
        # Deep queue: each in-flight request adds ~one more service
        # time (batch_hint=1), so 15ms of budget stops being enough.
        for _ in range(4):
            ctrl.try_admit(1.0)
        with pytest.raises(DeadlineExceeded):
            ctrl.try_admit(1.0, deadline=1.015)

    def test_failures_do_not_pollute_the_ewma(self):
        ctrl = AdmissionController(ewma_alpha=1.0)
        ctrl.try_admit(0.0)
        ctrl.complete(0.0, 10.0, ok=False)  # pathological, failed
        assert ctrl.stats().ewma_service_s == 0.0
        ctrl.try_admit(20.0, deadline=20.001)  # still admits
