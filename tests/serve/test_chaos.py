"""Chaos config parsing, injector draws, and a short real run.

The full harness (`python -m repro.serve.chaos`) runs longer in CI's
chaos-smoke job; here a compressed run — one worker SIGKILL plus
server-side stall/truncate injection under open-loop load — asserts
the two invariants that define the feature: **zero wrong answers**
and recovery to a serving fleet.
"""

from __future__ import annotations

import pytest

from repro.serve.chaos import (
    ChaosConfig,
    ChaosInjector,
    fleet_supported,
    run_chaos,
)

needs_fleet = pytest.mark.skipif(
    not fleet_supported(),
    reason="supervised fleets need fork, SIGCHLD and SO_REUSEPORT")


class TestChaosConfig:
    def test_disabled_by_default(self):
        assert not ChaosConfig().enabled
        assert ChaosConfig.from_env(environ={}) is None
        assert ChaosConfig.from_env(environ={"SPL_CHAOS": "  "}) is None

    def test_parses_full_spec(self):
        config = ChaosConfig.from_spec(
            "stall=0.01:2.5,truncate=0.02,trip=0.03,seed=9")
        assert config.stall_rate == pytest.approx(0.01)
        assert config.stall_s == pytest.approx(2.5)
        assert config.truncate_rate == pytest.approx(0.02)
        assert config.trip_rate == pytest.approx(0.03)
        assert config.seed == 9
        assert config.enabled

    def test_spec_roundtrips(self):
        config = ChaosConfig.from_spec("stall=0.5:1.5,trip=0.25")
        assert ChaosConfig.from_spec(config.to_spec()) == config

    def test_unknown_key_raises(self):
        # A typo'd spec that silently injected nothing would report
        # fake resilience.
        with pytest.raises(ValueError):
            ChaosConfig.from_spec("stal=0.5")

    def test_out_of_range_rate_raises(self):
        with pytest.raises(ValueError):
            ChaosConfig.from_spec("truncate=1.5")

    def test_malformed_element_raises(self):
        with pytest.raises(ValueError):
            ChaosConfig.from_spec("stall")


class TestChaosInjector:
    def test_zero_rates_never_fire(self):
        injector = ChaosInjector(ChaosConfig(seed=1))
        for _ in range(200):
            assert not injector.take_stall()
            assert not injector.take_truncate()
            assert not injector.take_trip()
        assert injector.stalls == injector.truncations == \
            injector.trips == 0

    def test_unit_rates_always_fire_and_count(self):
        injector = ChaosInjector(ChaosConfig(
            stall_rate=1.0, truncate_rate=1.0, trip_rate=1.0, seed=1))
        for _ in range(10):
            assert injector.take_stall()
            assert injector.take_truncate()
            assert injector.take_trip()
        assert injector.stalls == 10
        assert injector.truncations == 10
        assert injector.trips == 10

    def test_force_trip_degrades_a_real_breaker(self):
        from repro.serve.plans import PlanKey, PlanRegistry

        registry = PlanRegistry(prefer="numpy")
        plan = registry.get(PlanKey("fft", 8, "complex128"))
        executable = plan.executable
        assert executable.backend == "numpy"
        injector = ChaosInjector(ChaosConfig(trip_rate=1.0, seed=1))
        injector.force_trip(executable)
        assert executable.backend == "python"
        assert executable.stats()["degraded"]


@needs_fleet
class TestChaosRun:
    def test_short_chaos_run_zero_wrong_answers(self):
        report = run_chaos(
            workers=2, n=16, rate=150.0, duration=3.0,
            kill_at=(0.8,), recovery_window_s=1.5,
            server_chaos=ChaosConfig(
                stall_rate=0.01, stall_s=0.8,
                truncate_rate=0.01, trip_rate=0.005, seed=5),
            connections=3, seed=11)
        assert report.offered > 100
        # The two invariants: nothing wrong, and the fleet recovered.
        assert report.wrong == 0
        assert report.killed_pids, "the kill never landed"
        assert report.post_recovery_offered > 0
        assert report.post_recovery_availability >= 0.99
        assert report.availability >= 0.9
