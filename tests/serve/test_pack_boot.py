"""Boot-time pack consumption and the supervisor status file.

The serving-side halves of the wisdom-pack contract: ``spl serve
--pack`` must *never* crash at boot because of a bad pack — corrupt,
foreign, garbage, missing — it prints typed diagnostics and degrades
(to ``--wisdom``, then to no wisdom at all); and ``--status-file``
publishes the supervisor's fleet state as atomically-replaced JSON an
orchestrator can poll without parsing logs.
"""

from __future__ import annotations

import json
import os
import signal
import time

import pytest

from repro.serve.chaos import FleetProcess, fleet_supported
from repro.serve.plans import PlanRegistry
from repro.serve.supervisor import (
    RestartBudget,
    ServeConfig,
    Supervisor,
    _boot_wisdom,
    build_server,
    fork_supported,
)
from repro.wisdom.pack import build_pack
from repro.wisdom.store import WisdomStore

needs_fork = pytest.mark.skipif(
    not fork_supported(),
    reason="the supervisor needs fork, SIGCHLD and SO_REUSEPORT")

needs_fleet = pytest.mark.skipif(
    not fleet_supported(),
    reason="supervised fleets need fork, SIGCHLD and SO_REUSEPORT")


def _seeded(tmp_path):
    store = WisdomStore(tmp_path / "wisdom.json")
    store.record("fft-small", 8, formula="(F 8)", seconds=1.0,
                 mflops=2.0)
    pack_path = tmp_path / "wisdom.pack"
    build_pack(store, pack_path, include_artifacts=False)
    return store, pack_path


class TestBootWisdom:
    def test_no_sources_serves_without_wisdom(self):
        wisdom, source = _boot_wisdom(ServeConfig())
        assert wisdom is None and source == "none"

    def test_wisdom_path_loads_the_store(self, tmp_path):
        store, _ = _seeded(tmp_path)
        wisdom, source = _boot_wisdom(
            ServeConfig(wisdom_path=str(store.path)))
        assert source == "store"
        assert wisdom.lookup("fft-small", 8) is not None

    def test_pack_preferred_over_store(self, tmp_path):
        store, pack_path = _seeded(tmp_path)
        wisdom, source = _boot_wisdom(ServeConfig(
            wisdom_path=str(store.path), pack_path=str(pack_path)))
        assert source == "pack"
        assert len(wisdom) == 1
        assert wisdom.path is None  # the read-only in-memory pack store

    def test_corrupt_pack_degrades_to_store(self, tmp_path, capsys):
        store, pack_path = _seeded(tmp_path)
        pack_path.write_text("garbage {{{")
        wisdom, source = _boot_wisdom(ServeConfig(
            wisdom_path=str(store.path), pack_path=str(pack_path)))
        assert source == "store"
        assert wisdom.lookup("fft-small", 8) is not None
        err = capsys.readouterr().err
        assert "[json]" in err
        assert "degrading" in err

    def test_foreign_pack_degrades_to_no_wisdom(self, tmp_path, capsys):
        store, pack_path = _seeded(tmp_path)
        build_pack(store, pack_path, include_artifacts=False,
                   platform="alien-host")
        wisdom, source = _boot_wisdom(
            ServeConfig(pack_path=str(pack_path)))
        assert wisdom is None and source == "none"
        assert "[platform]" in capsys.readouterr().err

    def test_missing_pack_never_crashes(self, tmp_path, capsys):
        wisdom, source = _boot_wisdom(ServeConfig(
            pack_path=str(tmp_path / "never-shipped.pack")))
        assert wisdom is None and source == "none"
        assert "[io]" in capsys.readouterr().err

    def test_build_server_survives_every_bad_pack(self, tmp_path):
        # The whole point: a damaged deployment artifact must not turn
        # into a crashed boot.  build_server (no listener started) must
        # return a working server for each failure mode.
        cases = {
            "missing.pack": None,
            "garbage.pack": "not json",
            "truncated.pack": None,
        }
        store, pack_path = _seeded(tmp_path)
        cases["truncated.pack"] = pack_path.read_text()[:40]
        for name, text in cases.items():
            path = tmp_path / name
            if text is not None:
                path.write_text(text)
            server = build_server(ServeConfig(
                pack_path=str(path), prefer="numpy"))
            stats = server.router.registry.stats()
            assert stats["wisdom_source"] == "none", name
            assert not stats["wisdom_attached"], name

    def test_registry_stats_carry_wisdom_source(self):
        assert PlanRegistry(prefer="numpy").stats()[
            "wisdom_source"] == "none"
        registry = PlanRegistry(
            prefer="numpy", wisdom=WisdomStore(None, autosave=False))
        assert registry.stats()["wisdom_source"] == "store"
        registry = PlanRegistry(
            prefer="numpy", wisdom=WisdomStore(None, autosave=False),
            wisdom_source="pack")
        assert registry.stats()["wisdom_source"] == "pack"


@needs_fork
class TestStatusFilePublishing:
    def _supervisor(self, tmp_path, **kwargs):
        return Supervisor(ServeConfig(), workers=2,
                          status_file=str(tmp_path / "status.json"),
                          **kwargs)

    def test_status_includes_budget_and_slots(self, tmp_path):
        sup = self._supervisor(
            tmp_path, budget=RestartBudget(budget=4, window_s=30.0))
        status = sup.status()
        assert status["workers"] == 2
        assert status["budget_remaining"] == 4
        assert not status["stopping"]
        assert [s["index"] for s in status["slots"]] == [0, 1]
        assert all(s["state"] == "down" for s in status["slots"])

    def test_publish_is_atomic_json_and_change_driven(self, tmp_path):
        sup = self._supervisor(tmp_path)
        sup._maybe_publish_status()
        path = tmp_path / "status.json"
        first = json.loads(path.read_text())
        assert first["workers"] == 2
        stamp = os.path.getmtime(path)
        time.sleep(0.02)
        sup._maybe_publish_status()  # nothing changed: no rewrite
        assert os.path.getmtime(path) == stamp
        sup.crashes += 1
        sup._maybe_publish_status()
        assert json.loads(path.read_text())["crashes"] == 1
        leftovers = [p for p in tmp_path.iterdir() if ".tmp" in p.name]
        assert leftovers == []

    def test_unwritable_status_file_never_raises(self, tmp_path):
        sup = Supervisor(ServeConfig(), workers=1,
                         status_file=str(tmp_path))  # a directory
        sup._maybe_publish_status()  # logged, not fatal


@needs_fleet
class TestStatusFileLive:
    def test_fleet_publishes_ready_then_stopped(self, tmp_path):
        status_path = tmp_path / "status.json"
        with FleetProcess(workers=2, warm=(),
                          extra_args=("--status-file",
                                      str(status_path))) as fleet:
            deadline = time.monotonic() + 30
            doc = {}
            while time.monotonic() < deadline:
                if status_path.exists():
                    doc = json.loads(status_path.read_text())
                    if doc.get("ready") == 2:
                        break
                time.sleep(0.05)
            assert doc.get("ready") == 2, doc
            assert doc["workers"] == 2
            assert {s["state"] for s in doc["slots"]} == {"ready"}
            fleet.signal(signal.SIGTERM)
            assert fleet.proc.wait(timeout=60) == 0
        final = json.loads(status_path.read_text())
        assert final["stopping"]
        assert final["alive"] == 0
        assert {s["state"] for s in final["slots"]} == {"stopped"}
