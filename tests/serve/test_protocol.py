"""Wire-protocol unit tests: framing, caps, vector codecs."""

from __future__ import annotations

import io
import struct

import numpy as np
import pytest

from repro.serve.errors import BadRequest
from repro.serve.protocol import (
    MAX_HEADER_BYTES,
    MAX_PAYLOAD_BYTES,
    bytes_to_vector,
    decode_header,
    dtype_name,
    encode_frame,
    read_frame_sync,
    resolve_dtype,
    vector_to_bytes,
)


def roundtrip(header: dict, payload: bytes = b"") -> tuple[dict, bytes]:
    return read_frame_sync(io.BytesIO(encode_frame(header, payload)))


class TestFraming:
    def test_header_roundtrip(self):
        header, payload = roundtrip({"op": "ping", "id": 3})
        assert header["op"] == "ping"
        assert header["id"] == 3
        assert payload == b""

    def test_payload_roundtrip(self):
        raw = b"\x01\x02\x03\x04"
        header, payload = roundtrip({"op": "transform"}, raw)
        assert header["payload_bytes"] == 4
        assert payload == raw

    def test_eof_before_frame_is_none(self):
        assert read_frame_sync(io.BytesIO(b"")) is None

    def test_truncated_payload_is_none(self):
        frame = encode_frame({"op": "transform"}, b"abcdef")
        assert read_frame_sync(io.BytesIO(frame[:-3])) is None

    def test_zero_header_length_rejected(self):
        with pytest.raises(BadRequest):
            read_frame_sync(io.BytesIO(struct.pack(">I", 0)))

    def test_hostile_header_length_rejected(self):
        blob = struct.pack(">I", MAX_HEADER_BYTES + 1) + b"x" * 64
        with pytest.raises(BadRequest):
            read_frame_sync(io.BytesIO(blob))

    def test_hostile_payload_bytes_rejected(self):
        raw = (b'{"payload_bytes": %d}'
               % (MAX_PAYLOAD_BYTES + 1))
        blob = struct.pack(">I", len(raw)) + raw
        with pytest.raises(BadRequest):
            read_frame_sync(io.BytesIO(blob))

    def test_non_json_header_rejected(self):
        blob = struct.pack(">I", 4) + b"\xff\xfe\x00\x01"
        with pytest.raises(BadRequest):
            read_frame_sync(io.BytesIO(blob))

    def test_non_object_header_rejected(self):
        with pytest.raises(BadRequest):
            decode_header(b"[1, 2]")

    def test_pipelined_frames_read_in_sequence(self):
        stream = io.BytesIO(
            encode_frame({"id": 1}, b"aa")
            + encode_frame({"id": 2}, b"bbbb")
        )
        first = read_frame_sync(stream)
        second = read_frame_sync(stream)
        assert first[0]["id"] == 1 and first[1] == b"aa"
        assert second[0]["id"] == 2 and second[1] == b"bbbb"
        assert read_frame_sync(stream) is None


class TestVectorCodec:
    @pytest.mark.parametrize("dtype", ["float64", "complex128"])
    def test_roundtrip(self, dtype):
        rng = np.random.default_rng(5)
        x = rng.standard_normal(16).astype(dtype)
        if dtype == "complex128":
            x = x + 1j * rng.standard_normal(16)
        back = bytes_to_vector(vector_to_bytes(x), 16,
                               resolve_dtype(dtype))
        np.testing.assert_array_equal(back, x)
        assert back.flags.writeable

    def test_length_mismatch_rejected(self):
        with pytest.raises(BadRequest):
            bytes_to_vector(b"\x00" * 8, 16, np.dtype(np.float64))

    def test_unknown_dtype_rejected(self):
        with pytest.raises(BadRequest):
            resolve_dtype("float16")
        with pytest.raises(BadRequest):
            dtype_name(np.dtype(np.int32))
