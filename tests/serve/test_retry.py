"""Client resilience: timeouts, retry policy, and retry budget.

Unit tests pin the pure policy logic (classification, backoff shape,
budget accounting) with injected RNG/sleep so nothing is timing
dependent; integration tests run a real server and verify that
``SplClient`` raises a typed ``SplTimeout``, that retries survive a
dropped connection, and that the budget actually stops retry storms.
"""

from __future__ import annotations

import asyncio
import random
import socket
import threading
import time

import numpy as np
import pytest

from repro.serve import (
    Overloaded,
    ResilientAsyncClient,
    RetryBudget,
    RetryPolicy,
    SplClient,
    SplTimeout,
    Unavailable,
    call_with_retry,
)
from repro.serve.errors import BadRequest, DeadlineExceeded

from tests.serve.test_server import (
    FFT16,
    ServerHarness,
    _complex_vec,
    numpy_router,
)


class TestRetryPolicyClassification:
    def test_overload_and_unavailable_are_retryable(self):
        policy = RetryPolicy()
        assert policy.retryable(Overloaded("queue full"))
        assert policy.retryable(Unavailable("draining"))

    def test_timeout_and_connection_loss_are_retryable(self):
        policy = RetryPolicy()
        assert policy.retryable(SplTimeout("slow"))
        assert policy.retryable(ConnectionError("gone"))
        assert policy.retryable(ConnectionRefusedError("restarting"))

    def test_caller_errors_are_not_retryable(self):
        policy = RetryPolicy()
        assert not policy.retryable(BadRequest("bad dtype"))
        assert not policy.retryable(DeadlineExceeded("missed"))
        assert not policy.retryable(ValueError("not a wire error"))

    def test_overload_retry_can_be_disabled(self):
        policy = RetryPolicy(retry_overload=False)
        assert not policy.retryable(Overloaded("queue full"))
        assert policy.retryable(SplTimeout("slow"))

    def test_connection_retry_can_be_disabled(self):
        policy = RetryPolicy(retry_connection=False)
        assert not policy.retryable(ConnectionError("gone"))
        assert policy.retryable(Overloaded("queue full"))


class TestBackoff:
    def test_backoff_grows_exponentially_and_caps(self):
        policy = RetryPolicy(base_backoff_s=0.01, multiplier=2.0,
                             max_backoff_s=0.05)
        rng = random.Random(7)
        # Full jitter: each draw is uniform in (0, cap of that retry].
        for retry_index, cap in ((0, 0.01), (1, 0.02), (2, 0.04),
                                 (3, 0.05), (10, 0.05)):
            for _ in range(50):
                delay = policy.backoff_s(retry_index, rng)
                assert 0.0 <= delay <= cap + 1e-12

    def test_jitter_actually_varies(self):
        policy = RetryPolicy(base_backoff_s=0.01)
        rng = random.Random(3)
        draws = {policy.backoff_s(2, rng) for _ in range(16)}
        assert len(draws) > 1


class TestRetryBudget:
    def test_budget_spends_down_and_denies(self):
        budget = RetryBudget(ratio=0.0, max_tokens=2.0,
                             min_reserve=0.0)
        budget._tokens = 2.0
        assert budget.allow_retry()
        assert budget.allow_retry()
        assert not budget.allow_retry()
        assert budget.denied == 1
        assert budget.spent == 2

    def test_attempts_replenish_tokens(self):
        budget = RetryBudget(ratio=0.5, max_tokens=8.0,
                             min_reserve=0.0)
        budget._tokens = 0.0
        assert not budget.allow_retry()
        for _ in range(4):
            budget.record_attempt()
        # 4 attempts * 0.5 = 2 tokens.
        assert budget.allow_retry()
        assert budget.allow_retry()
        assert not budget.allow_retry()

    def test_min_reserve_seeds_a_cold_bucket(self):
        # A cold client has never deposited, yet its first failures
        # may still retry: the reserve seeds exactly three tokens.
        budget = RetryBudget(ratio=0.0, max_tokens=8.0,
                             min_reserve=3.0)
        assert [budget.allow_retry() for _ in range(4)] == \
            [True, True, True, False]

    def test_budget_is_thread_safe_under_contention(self):
        budget = RetryBudget(ratio=0.0, max_tokens=100.0,
                             min_reserve=0.0)
        budget._tokens = 100.0
        granted = []

        def spin():
            got = sum(1 for _ in range(50) if budget.allow_retry())
            granted.append(got)

        threads = [threading.Thread(target=spin) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert sum(granted) == 100  # never over-grants

    def test_concurrent_deposits_and_withdrawals_conserve_tokens(self):
        # Threads racing record_attempt against allow_retry: the
        # bucket must never go negative, never exceed capacity, and
        # the final level must account for every deposit and every
        # granted withdrawal exactly — no lost updates either way.
        workers, rounds, ratio = 8, 200, 0.25
        # Capacity chosen so the cap never binds: accounting is exact.
        budget = RetryBudget(ratio=ratio,
                             max_tokens=workers * rounds * ratio + 10,
                             min_reserve=4.0)
        start = threading.Barrier(workers)
        observed = []

        def churn():
            start.wait()
            for i in range(rounds):
                budget.record_attempt()
                if i % 2:
                    budget.allow_retry()
                observed.append(budget.tokens)

        threads = [threading.Thread(target=churn)
                   for _ in range(workers)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert all(0.0 <= level <= budget.max_tokens
                   for level in observed)
        retry_calls = workers * (rounds // 2)
        assert budget.spent + budget.denied == retry_calls
        expected = 4.0 + workers * rounds * ratio - budget.spent
        assert budget.tokens == pytest.approx(expected)
        assert budget.tokens >= 0.0


class TestCallWithRetry:
    def test_retries_until_success(self):
        calls = []

        def attempt():
            calls.append(1)
            if len(calls) < 3:
                raise Overloaded("busy")
            return "ok"

        slept = []
        result = call_with_retry(
            attempt, RetryPolicy(attempts=4, base_backoff_s=0.01),
            rng=random.Random(0), sleep=slept.append)
        assert result == "ok"
        assert len(calls) == 3
        assert len(slept) == 2

    def test_non_retryable_raises_immediately(self):
        calls = []

        def attempt():
            calls.append(1)
            raise BadRequest("no")

        with pytest.raises(BadRequest):
            call_with_retry(attempt, RetryPolicy(attempts=5),
                            sleep=lambda _: None)
        assert len(calls) == 1

    def test_attempt_bound_is_respected(self):
        calls = []

        def attempt():
            calls.append(1)
            raise Unavailable("down")

        with pytest.raises(Unavailable):
            call_with_retry(attempt, RetryPolicy(attempts=3),
                            sleep=lambda _: None)
        assert len(calls) == 3

    def test_exhausted_budget_stops_retries(self):
        budget = RetryBudget(ratio=0.0, max_tokens=1.0,
                             min_reserve=0.0)
        budget._tokens = 1.0
        calls = []

        def attempt():
            calls.append(1)
            raise Overloaded("busy")

        with pytest.raises(Overloaded):
            call_with_retry(
                attempt,
                RetryPolicy(attempts=10, budget=budget),
                sleep=lambda _: None)
        assert len(calls) == 2  # first try + the single budgeted retry
        assert budget.denied >= 1


class TestClientTimeout:
    def test_slow_response_raises_typed_timeout(self):
        # max_delay keeps the request parked in the coalescing window
        # far longer than the client timeout.
        router = numpy_router(max_delay=5.0, max_batch=64)
        with ServerHarness(router, warm=[FFT16]) as harness:
            client = SplClient(harness.host, harness.port,
                               request_timeout=0.2)
            with client:
                start = time.monotonic()
                with pytest.raises(SplTimeout) as excinfo:
                    client.transform("fft", _complex_vec(16))
                elapsed = time.monotonic() - start
            assert excinfo.value.code == "timeout"
            assert elapsed < 2.0

    def test_per_call_timeout_overrides_default(self):
        router = numpy_router(max_delay=5.0, max_batch=64)
        with ServerHarness(router, warm=[FFT16]) as harness:
            client = SplClient(harness.host, harness.port,
                               request_timeout=60.0)
            with client:
                with pytest.raises(SplTimeout):
                    client.transform("fft", _complex_vec(16),
                                     timeout=0.2, retry=None)

    def test_timeout_poisons_the_connection_but_client_redials(self):
        router = numpy_router(max_delay=5.0, max_batch=64)
        with ServerHarness(router, warm=[FFT16]) as harness:
            client = SplClient(harness.host, harness.port,
                               request_timeout=0.2)
            with client:
                with pytest.raises(SplTimeout):
                    client.transform("fft", _complex_vec(16),
                                     retry=None)
                # The next op re-dials lazily and works: pings bypass
                # the dispatcher so they answer immediately.
                client.ping()

    def test_async_client_timeout_keeps_stream_usable(self):
        async def scenario(host, port):
            from repro.serve import AsyncSplClient

            client = await AsyncSplClient.connect(host, port)
            try:
                with pytest.raises(SplTimeout):
                    await client.transform("fft", _complex_vec(16),
                                           timeout=0.2)
                # Pipelined client: a timed-out id is just abandoned;
                # the stream itself is still healthy.
                await client.ping()
            finally:
                await client.close()

        router = numpy_router(max_delay=5.0, max_batch=64)
        with ServerHarness(router, warm=[FFT16]) as harness:
            asyncio.run(scenario(harness.host, harness.port))


class TestClientRetryIntegration:
    def test_sync_client_survives_server_restart(self):
        """Connection loss mid-session is retried transparently."""
        x = _complex_vec(16, seed=5)
        policy = RetryPolicy(attempts=8, base_backoff_s=0.05,
                             max_backoff_s=0.2)
        first = ServerHarness(numpy_router(), warm=[FFT16])
        first.__enter__()
        client = None
        try:
            client = SplClient(first.host, first.port, retry=policy)
            np.testing.assert_allclose(
                client.transform("fft", x), np.fft.fft(x), atol=1e-9)
        finally:
            first.__exit__(None, None, None)

        # A replacement server comes up; point the dead client at it.
        # What matters is the dropped-then-redialed retry path.
        with ServerHarness(numpy_router(), warm=[FFT16]) as second:
            client.host, client.port = second.host, second.port
            try:
                np.testing.assert_allclose(
                    client.transform("fft", x), np.fft.fft(x),
                    atol=1e-9)
            finally:
                client.close()

    def test_resilient_async_client_retries_unavailable(self):
        async def scenario(host, port):
            client = ResilientAsyncClient(
                host, port,
                policy=RetryPolicy(attempts=4, base_backoff_s=0.01))
            try:
                x = _complex_vec(16, seed=9)
                y = await client.transform("fft", x)
                np.testing.assert_allclose(y, np.fft.fft(x),
                                           atol=1e-9)
            finally:
                await client.close()

        with ServerHarness(numpy_router(), warm=[FFT16]) as harness:
            asyncio.run(scenario(harness.host, harness.port))

    def test_resilient_client_shares_one_redial_across_waiters(self):
        """Concurrent requests that lose the connection must not each
        open their own socket (the leak is a file-descriptor storm)."""

        async def scenario(host, port):
            client = ResilientAsyncClient(
                host, port,
                policy=RetryPolicy(attempts=4, base_backoff_s=0.01))
            try:
                xs = [_complex_vec(16, seed=s) for s in range(8)]
                results = await asyncio.gather(*[
                    client.transform("fft", x) for x in xs])
                for x, y in zip(xs, results):
                    np.testing.assert_allclose(y, np.fft.fft(x),
                                               atol=1e-9)
            finally:
                await client.close()
            return client.reconnects

        with ServerHarness(numpy_router(), warm=[FFT16]) as harness:
            reconnects = asyncio.run(
                scenario(harness.host, harness.port))
        assert reconnects == 1  # the initial dial, shared by all 8
