"""End-to-end tests for the transform service.

Each test boots a real :class:`SplServer` on an ephemeral port (in a
background thread running its own event loop) and talks to it over
actual sockets, so the full path — framing, routing, admission,
dispatch, breaker-guarded execution — is exercised, not mocked.
"""

from __future__ import annotations

import asyncio
import threading

import numpy as np
import pytest

from repro.serve import (
    AsyncSplClient,
    BadRequest,
    DeadlineExceeded,
    Overloaded,
    PlanKey,
    PlanRegistry,
    Router,
    ServeError,
    SplClient,
    SplServer,
)
from repro.serve.loadgen import WorkloadSpec, run_load
from repro.serve.protocol import dtype_name
from repro.wisdom.store import WisdomStore

FFT16 = PlanKey("fft", 16, "complex128")
WHT8 = PlanKey("wht", 8, "float64")


def _rng(seed: int = 0) -> np.random.Generator:
    return np.random.default_rng(seed)


def _complex_vec(n: int, seed: int = 0) -> np.ndarray:
    rng = _rng(seed)
    return rng.standard_normal(n) + 1j * rng.standard_normal(n)


def _wht_matrix(n: int) -> np.ndarray:
    matrix = np.array([[1.0]])
    while matrix.shape[0] < n:
        matrix = np.block([[matrix, matrix], [matrix, -matrix]])
    return matrix


class ServerHarness:
    """A live server on an ephemeral port, run in its own thread."""

    def __init__(self, router: Router | None = None,
                 warm: list[PlanKey] | None = None):
        self._router = router
        self._warm = warm or []
        self._ready = threading.Event()
        self._boot_error: BaseException | None = None
        self._thread = threading.Thread(target=self._thread_main,
                                        daemon=True)
        self.server: SplServer | None = None
        self.host = ""
        self.port = 0

    def _thread_main(self) -> None:
        try:
            asyncio.run(self._amain())
        except BaseException as exc:  # noqa: BLE001 - surfaced below
            self._boot_error = exc
            self._ready.set()

    async def _amain(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        self.server = SplServer(self._router, warm=self._warm)
        self.host, self.port = await self.server.start()
        self._ready.set()
        await self._stop.wait()
        await self.server.close()

    def __enter__(self) -> "ServerHarness":
        self._thread.start()
        assert self._ready.wait(60), "server did not boot"
        if self._boot_error is not None:
            raise self._boot_error
        return self

    def __exit__(self, *exc_info) -> None:
        self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout=60)
        assert not self._thread.is_alive(), "server did not shut down"

    def client(self) -> SplClient:
        return SplClient(self.host, self.port)


def numpy_router(**kwargs) -> Router:
    """A router on the NumPy backend: fast to build, CI-safe."""
    return Router(PlanRegistry(prefer="numpy"), **kwargs)


class TestRoundtrips:
    def test_fft_matches_numpy(self):
        with ServerHarness(numpy_router(), warm=[FFT16]) as harness, \
                harness.client() as client:
            x = _complex_vec(16, seed=3)
            y = client.transform("fft", x)
            np.testing.assert_allclose(y, np.fft.fft(x), atol=1e-9)

    def test_wht_matches_dense_semantics(self):
        with ServerHarness(numpy_router(), warm=[WHT8]) as harness, \
                harness.client() as client:
            x = _rng(4).standard_normal(8)
            y = client.transform("wht", x)
            np.testing.assert_allclose(y, _wht_matrix(8) @ x,
                                       atol=1e-9)

    def test_cold_route_builds_on_first_request(self):
        with ServerHarness(numpy_router()) as harness, \
                harness.client() as client:
            x = _complex_vec(32, seed=5)
            y = client.transform("fft", x)
            np.testing.assert_allclose(y, np.fft.fft(x), atol=1e-9)
            assert client.stats()["registry"]["plans"] == 1

    def test_ping_and_stats(self):
        with ServerHarness(numpy_router(), warm=[FFT16]) as harness, \
                harness.client() as client:
            client.ping()
            stats = client.stats()
            assert stats["registry"]["plans"] == 1
            (plan,) = stats["plans"]
            assert plan["plan"] == "fft:16:complex128"
            assert plan["admission"]["admitted"] == 0

    def test_pipelined_responses_match_their_requests(self):
        # Many concurrent requests on one connection; each response is
        # matched back by id, so every caller must get *its own* row.
        with ServerHarness(numpy_router(), warm=[FFT16]) as harness:
            async def drive():
                client = await AsyncSplClient.connect(harness.host,
                                                      harness.port)
                try:
                    vecs = [_complex_vec(16, seed=s)
                            for s in range(24)]
                    results = await asyncio.gather(*[
                        client.transform("fft", x) for x in vecs])
                    for x, y in zip(vecs, results):
                        np.testing.assert_allclose(
                            y, np.fft.fft(x), atol=1e-9)
                finally:
                    await client.close()

            asyncio.run(drive())


class TestTypedErrors:
    def test_unknown_transform(self):
        with ServerHarness(numpy_router()) as harness, \
                harness.client() as client:
            with pytest.raises(BadRequest, match="unknown transform"):
                client.transform("dct", _complex_vec(16))

    def test_wht_rejects_complex_dtype_route(self):
        with ServerHarness(numpy_router()) as harness, \
                harness.client() as client:
            with pytest.raises(BadRequest, match="float64"):
                client.transform("wht", _complex_vec(8))

    def test_unplannable_size(self):
        with ServerHarness(numpy_router()) as harness, \
                harness.client() as client:
            # 3 * 257: not smooth, larger than the direct-DFT cap.
            with pytest.raises(BadRequest, match="not plannable"):
                client.transform("fft", _complex_vec(771))

    def test_payload_length_mismatch(self):
        with ServerHarness(numpy_router()) as harness, \
                harness.client() as client:
            x = _complex_vec(16)
            header = {"op": "transform", "transform": "fft", "n": 16,
                      "dtype": dtype_name(x.dtype)}
            with pytest.raises(BadRequest, match="expected"):
                client._roundtrip(header, x.tobytes()[:-8])

    def test_unknown_op(self):
        with ServerHarness(numpy_router()) as harness, \
                harness.client() as client:
            with pytest.raises(BadRequest, match="unknown op"):
                client._roundtrip({"op": "frobnicate"})

    def test_expired_deadline_is_shed(self):
        with ServerHarness(numpy_router(), warm=[FFT16]) as harness, \
                harness.client() as client:
            # A 1ns budget has always expired by admission time; the
            # request must be shed, not executed.
            with pytest.raises(DeadlineExceeded):
                client.transform("fft", _complex_vec(16),
                                 deadline_ms=1e-6)
            stats = client.stats()
            (plan,) = stats["plans"]
            assert plan["admission"]["shed_deadline"] == 1
            assert plan["admission"]["admitted"] == 0


class _GatedTarget:
    """Wrap a plan executable; hold every batch until released."""

    def __init__(self, inner):
        self.inner = inner
        self.n = inner.n
        self.dtype = inner.dtype
        self.release = threading.Event()

    def apply_many(self, X, **kwargs):
        assert self.release.wait(60), "gate never released"
        return self.inner.apply_many(X, **kwargs)


class _PoisonDetector:
    """Wrap a plan executable; refuse any batch containing NaN."""

    def __init__(self, inner):
        self.inner = inner
        self.n = inner.n
        self.dtype = inner.dtype

    def apply_many(self, X, **kwargs):
        if np.isnan(np.asarray(X).real).any():
            raise ValueError("poisoned batch")
        return self.inner.apply_many(X, **kwargs)


class TestOverloadAndIsolation:
    def test_bounded_queue_rejects_with_typed_overload(self):
        queue_limit = 4
        extra = 3
        router = numpy_router(queue_limit=queue_limit, max_batch=64,
                              max_delay=0.005)
        with ServerHarness(router, warm=[FFT16]) as harness:
            service = router.try_service(FFT16)
            gate = _GatedTarget(service.dispatcher.target)
            service.dispatcher.target = gate

            async def drive():
                client = await AsyncSplClient.connect(harness.host,
                                                      harness.port)
                try:
                    x = _complex_vec(16)
                    header = {"op": "transform", "transform": "fft",
                              "n": 16, "dtype": dtype_name(x.dtype)}
                    futures = [client.submit(header, x.tobytes())
                               for _ in range(queue_limit + extra)]
                    await client.drain()
                    # Nothing completes while the gate is held, so
                    # admission fills to exactly queue_limit and every
                    # request past it is rejected.  Release once the
                    # rejections have come back.
                    done = 0
                    while done < extra:
                        done = sum(f.done() for f in futures)
                        await asyncio.sleep(0.01)
                    gate.release.set()
                    return await asyncio.gather(
                        *futures, return_exceptions=True)
                finally:
                    await client.close()

            outcomes = asyncio.run(drive())
            overloads = [o for o in outcomes
                         if isinstance(o, Overloaded)]
            served = [o for o in outcomes if not isinstance(
                o, BaseException)]
            assert len(overloads) == extra
            assert len(served) == queue_limit
            assert overloads[0].queue_limit == queue_limit
            stats = service.admission.stats()
            assert stats.rejected_overload == extra
            assert stats.admitted == queue_limit

    def test_poisoned_request_fails_alone(self):
        batch = 5
        router = numpy_router(max_batch=batch, max_delay=0.05)
        with ServerHarness(router, warm=[WHT8]) as harness:
            service = router.try_service(WHT8)
            service.dispatcher.target = _PoisonDetector(
                service.dispatcher.target)

            async def drive():
                client = await AsyncSplClient.connect(harness.host,
                                                      harness.port)
                try:
                    clean = [_rng(s).standard_normal(8)
                             for s in range(batch - 1)]
                    poison = np.full(8, np.nan)
                    futures = [client.transform("wht", x)
                               for x in clean]
                    futures.append(client.transform("wht", poison))
                    results = await asyncio.gather(
                        *futures, return_exceptions=True)
                    return clean, results
                finally:
                    await client.close()

            clean, results = asyncio.run(drive())
            *served, poisoned = results
            assert isinstance(poisoned, ServeError)
            assert poisoned.code == "internal"
            assert "poisoned" in str(poisoned)
            for x, y in zip(clean, served):
                assert not isinstance(y, BaseException)
                np.testing.assert_allclose(y, _wht_matrix(8) @ x,
                                           atol=1e-9)

    def test_open_loop_overload_run_reports_typed_outcomes(self):
        router = numpy_router(queue_limit=2, max_batch=4,
                              max_delay=0.001)
        with ServerHarness(router, warm=[FFT16]) as harness:
            async def drive():
                return await run_load(
                    harness.host, harness.port,
                    mix={WorkloadSpec("fft", 16): 1.0},
                    rate=4000, duration=0.4, pattern="burst",
                    connections=4, seed=11)

            report = asyncio.run(drive())
            assert report.offered > 100
            assert report.completed > 0
            # Open-loop at far beyond capacity with queue_limit=2:
            # the bounded queue must shed, and only with the typed
            # overload code — never a transport error or a crash.
            assert report.errors.get("overload", 0) > 0
            assert set(report.errors) <= {"overload"}
            assert (report.completed
                    + sum(report.errors.values())) == report.offered


class TestDrain:
    """Graceful drain: stop accepting, answer everything admitted."""

    def test_admitted_requests_complete_and_new_ones_are_refused(self):
        router = numpy_router(max_batch=64, max_delay=0.05)
        with ServerHarness(router, warm=[FFT16]) as harness:
            service = router.try_service(FFT16)
            gate = _GatedTarget(service.dispatcher.target)
            service.dispatcher.target = gate

            async def drive():
                client = await AsyncSplClient.connect(harness.host,
                                                      harness.port)
                xs = [_complex_vec(16, seed=s) for s in range(4)]
                try:
                    futures = [asyncio.ensure_future(
                        client.transform("fft", x)) for x in xs]
                    await client.drain()
                    # Admit everything before the drain begins.
                    while harness.server._inflight < len(xs):
                        await asyncio.sleep(0.005)
                    drain_task = asyncio.ensure_future(
                        harness.server.drain(grace=30.0))
                    await asyncio.sleep(0.05)
                    # Connections already established get the typed
                    # rejection for *new* work...
                    with pytest.raises(ServeError) as excinfo:
                        await client.transform("fft", xs[0])
                    assert excinfo.value.code == "unavailable"
                    # ...while fresh connections are refused outright
                    # (the listener is closed).
                    with pytest.raises((ConnectionError, OSError)):
                        await asyncio.wait_for(
                            AsyncSplClient.connect(harness.host,
                                                   harness.port), 5)
                    assert not drain_task.done()
                    gate.release.set()
                    drained = await drain_task
                    results = await asyncio.gather(*futures)
                    return drained, xs, results
                finally:
                    await client.close()

            drained, xs, results = asyncio.run(
                asyncio.wait_for(_run_on(harness, drive), 60))
            assert drained is True
            # Zero admitted requests lost: every one answered, right.
            for x, y in zip(xs, results):
                np.testing.assert_allclose(y, np.fft.fft(x),
                                           atol=1e-9)

    def test_drain_times_out_when_requests_never_finish(self):
        router = numpy_router(max_batch=64, max_delay=0.05)
        with ServerHarness(router, warm=[FFT16]) as harness:
            service = router.try_service(FFT16)
            gate = _GatedTarget(service.dispatcher.target)
            service.dispatcher.target = gate

            async def drive():
                client = await AsyncSplClient.connect(harness.host,
                                                      harness.port)
                try:
                    future = asyncio.ensure_future(
                        client.transform("fft", _complex_vec(16)))
                    await client.drain()
                    while harness.server._inflight < 1:
                        await asyncio.sleep(0.005)
                    drained = await harness.server.drain(grace=0.2)
                    gate.release.set()  # let the harness shut down
                    await future
                    return drained
                finally:
                    await client.close()

            drained = asyncio.run(
                asyncio.wait_for(_run_on(harness, drive), 60))
            assert drained is False

    def test_stats_expose_pid_and_drain_state(self):
        with ServerHarness(numpy_router(), warm=[FFT16]) as harness, \
                harness.client() as client:
            stats = client.stats()
            assert stats["pid"] > 0
            assert stats["draining"] is False
            assert stats["inflight"] == 0


async def _run_on(harness: ServerHarness, coro_fn):
    """Run ``coro_fn()`` on the harness server's own event loop."""
    loop = asyncio.get_running_loop()
    future = asyncio.run_coroutine_threadsafe(coro_fn(),
                                              harness._loop)
    return await loop.run_in_executor(None, future.result, 55)


class TestWisdomHotBoot:
    def test_warmed_plan_replays_the_search_winner(self, tmp_path):
        from repro.search.dp import search_small_sizes

        store = WisdomStore(tmp_path / "wisdom.json")
        results = search_small_sizes(
            (4, 8), max_candidates=2, min_time=0.0005, wisdom=store)
        assert set(results) == {4, 8}

        registry = PlanRegistry(prefer="numpy", wisdom=store)
        router = Router(registry)
        keys = [PlanKey("fft", 4, "complex128"),
                PlanKey("fft", 8, "complex128")]
        with ServerHarness(router, warm=keys) as harness, \
                harness.client() as client:
            stats = client.stats()
            assert stats["registry"]["wisdom_boots"] == 2
            assert all(plan["from_wisdom"]
                       for plan in stats["plans"])
            for n, seed in ((4, 1), (8, 2)):
                x = _complex_vec(n, seed=seed)
                np.testing.assert_allclose(
                    client.transform("fft", x), np.fft.fft(x),
                    atol=1e-9)

    def test_tampered_wisdom_degrades_to_cold_build(self, tmp_path):
        from repro.search.dp import search_small_sizes

        store = WisdomStore(tmp_path / "wisdom.json")
        search_small_sizes((4,), max_candidates=2, min_time=0.0005,
                           wisdom=store)
        # Corrupt the stored formula: it must be re-validated at boot
        # and evicted, never served.
        for entry in store.entries.values():
            entry.formula = "(I 4)"

        registry = PlanRegistry(prefer="numpy", wisdom=store)
        with ServerHarness(Router(registry),
                           warm=[PlanKey("fft", 4, "complex128")]) \
                as harness, harness.client() as client:
            stats = client.stats()
            assert stats["registry"]["wisdom_boots"] == 0
            x = _complex_vec(4, seed=9)
            np.testing.assert_allclose(
                client.transform("fft", x), np.fft.fft(x), atol=1e-9)
