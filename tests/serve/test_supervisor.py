"""The supervised fleet: restart policy units + live-fleet behavior.

Policy logic (backoff shape, restart-budget window) is tested pure.
Fleet behavior — crash recovery, graceful SIGTERM drain, SIGHUP
rolling restart — is tested against the *real CLI* in a subprocess
(fork from a threaded pytest process is unsafe, and the CLI path is
exactly what production runs).  Fleet tests skip on hosts without
fork/SO_REUSEPORT, mirroring the jit-smoke convention.
"""

from __future__ import annotations

import random
import signal
import time

import numpy as np
import pytest

from repro.serve import RetryPolicy, SplClient
from repro.serve.chaos import FleetProcess, fleet_supported
from repro.serve.supervisor import (
    BackoffPolicy,
    RestartBudget,
    ServeConfig,
)

from tests.serve.test_server import _complex_vec

needs_fleet = pytest.mark.skipif(
    not fleet_supported(),
    reason="supervised fleets need fork, SIGCHLD and SO_REUSEPORT")


class TestBackoffPolicy:
    def test_delay_grows_exponentially_and_caps(self):
        policy = BackoffPolicy(base_s=0.5, multiplier=2.0, max_s=4.0,
                               jitter=0.0)
        assert policy.delay(1) == pytest.approx(0.5)
        assert policy.delay(2) == pytest.approx(1.0)
        assert policy.delay(3) == pytest.approx(2.0)
        assert policy.delay(4) == pytest.approx(4.0)
        assert policy.delay(9) == pytest.approx(4.0)

    def test_jitter_bounds(self):
        policy = BackoffPolicy(base_s=1.0, multiplier=1.0, max_s=1.0,
                               jitter=0.25)
        rng = random.Random(11)
        for _ in range(100):
            delay = policy.delay(1, rng)
            assert 1.0 <= delay <= 1.25

    def test_zero_failures_treated_as_first(self):
        policy = BackoffPolicy(base_s=0.5, jitter=0.0)
        assert policy.delay(0) == pytest.approx(0.5)


class TestRestartBudget:
    def test_spends_until_window_full(self):
        budget = RestartBudget(budget=3, window_s=100.0)
        assert budget.try_spend(0.0)
        assert budget.try_spend(1.0)
        assert budget.try_spend(2.0)
        assert not budget.try_spend(3.0)
        assert budget.spent == 3
        assert budget.refused == 1
        assert budget.tripped(3.0)

    def test_window_slides_and_frees_capacity(self):
        budget = RestartBudget(budget=2, window_s=10.0)
        assert budget.try_spend(0.0)
        assert budget.try_spend(1.0)
        assert not budget.try_spend(5.0)
        # t=0 event leaves the window at t=10.
        assert budget.retry_after(5.0) == pytest.approx(5.0)
        assert budget.try_spend(10.0)
        assert budget.tripped(10.5)  # events at 1.0 and 10.0
        assert not budget.tripped(11.0)  # the 1.0 event slid out

    def test_retry_after_is_zero_with_capacity(self):
        budget = RestartBudget(budget=2, window_s=10.0)
        assert budget.retry_after(0.0) == 0.0
        budget.try_spend(0.0)
        assert budget.retry_after(0.0) == 0.0

    def test_rejects_nonpositive_budget(self):
        with pytest.raises(ValueError):
            RestartBudget(budget=0)


class TestServeConfig:
    def test_defaults_are_single_process_friendly(self):
        config = ServeConfig()
        assert config.port == 0
        assert config.drain_grace_s > 0


def _oracle_roundtrips(host: str, port: int, count: int = 5) -> None:
    # The retry policy is part of the contract under test: a request
    # that lands on a draining/dying worker is answered with a typed
    # retryable error, and the retry re-dials onto a healthy one.
    x = _complex_vec(16, seed=2)
    expected = np.fft.fft(x)
    policy = RetryPolicy(attempts=6, base_backoff_s=0.05,
                         max_backoff_s=0.5)
    with SplClient(host, port, timeout=10.0, request_timeout=10.0,
                   retry=policy) as client:
        for _ in range(count):
            np.testing.assert_allclose(
                client.transform("fft", x), expected, atol=1e-9)


@needs_fleet
class TestFleet:
    def test_fleet_boots_n_workers_on_one_port(self):
        with FleetProcess(workers=2, warm=("fft:16",)) as fleet:
            pids = fleet.worker_pids()
            assert len(pids) == 2
            _oracle_roundtrips(fleet.host, fleet.port)

    def test_killed_worker_is_replaced_and_serving_resumes(self):
        with FleetProcess(workers=2, warm=("fft:16",)) as fleet:
            before = fleet.worker_pids()
            assert len(before) == 2
            victim = sorted(before)[0]
            import os

            os.kill(victim, signal.SIGKILL)
            # The survivor keeps answering through the gap.
            _oracle_roundtrips(fleet.host, fleet.port)
            # The supervisor restarts the slot: a new pid appears.
            deadline = time.monotonic() + 30
            replaced = set()
            while time.monotonic() < deadline:
                replaced = fleet.worker_pids()
                if len(replaced) == 2 and victim not in replaced:
                    break
                time.sleep(0.1)
            assert len(replaced) == 2
            assert victim not in replaced
            _oracle_roundtrips(fleet.host, fleet.port)

    def test_sigterm_drains_and_exits_zero(self):
        with FleetProcess(workers=2, warm=("fft:16",)) as fleet:
            assert len(fleet.worker_pids()) == 2
            _oracle_roundtrips(fleet.host, fleet.port, count=2)
            fleet.signal(signal.SIGTERM)
            code = fleet.proc.wait(timeout=60)
            assert code == 0, fleet.stderr_text()
            text = fleet.stderr_text()
            assert "fleet stopped" in text

    def test_sighup_rolls_every_worker_without_losing_service(self):
        with FleetProcess(workers=2, warm=("fft:16",)) as fleet:
            before = fleet.worker_pids()
            assert len(before) == 2
            fleet.signal(signal.SIGHUP)
            # Throughout the roll the fleet answers correctly.
            deadline = time.monotonic() + 60
            after = set()
            while time.monotonic() < deadline:
                _oracle_roundtrips(fleet.host, fleet.port, count=1)
                after = fleet.worker_pids()
                if len(after) == 2 and not (after & before):
                    break
                time.sleep(0.1)
            assert len(after) == 2
            assert not (after & before), (before, after)
            _oracle_roundtrips(fleet.host, fleet.port)

    def test_restart_budget_refusal_degrades_then_recovers(self):
        # A tiny budget/window so a couple of kills trip the breaker.
        with FleetProcess(
                workers=2, warm=("fft:16",),
                extra_args=("--restart-budget", "1",
                            "--restart-window-s", "4")) as fleet:
            import os

            pids = fleet.worker_pids()
            assert len(pids) == 2
            # Kill both workers: only one restart fits the budget.
            for pid in sorted(pids):
                os.kill(pid, signal.SIGKILL)
                time.sleep(0.2)
            deadline = time.monotonic() + 40
            saw_refusal = False
            while time.monotonic() < deadline:
                if "restart budget exhausted" in fleet.stderr_text():
                    saw_refusal = True
                    break
                time.sleep(0.1)
            assert saw_refusal, fleet.stderr_text()
            # Once the window slides, the fleet heals back to 2.
            deadline = time.monotonic() + 60
            healed = set()
            while time.monotonic() < deadline:
                healed = fleet.worker_pids()
                if len(healed) == 2:
                    break
                time.sleep(0.2)
            assert len(healed) == 2, fleet.stderr_text()
            _oracle_roundtrips(fleet.host, fleet.port)


@needs_fleet
class TestSingleProcessSignals:
    def test_single_worker_mode_drains_on_sigterm(self):
        """--workers 1 runs no supervisor, but SIGTERM still triggers
        the same graceful drain-and-exit-0 path (satellite: signal
        handlers in single-process mode)."""
        with FleetProcess(workers=1, warm=("fft:16",)) as fleet:
            _oracle_roundtrips(fleet.host, fleet.port, count=2)
            fleet.signal(signal.SIGTERM)
            code = fleet.proc.wait(timeout=60)
            assert code == 0, fleet.stderr_text()
            assert "drained and stopped" in fleet.stderr_text()
