"""Crash-safety and concurrency tests for the persistent wisdom store.

Covers the failure matrix the store promises to absorb: truncated
files (a writer killed mid-write by a non-atomic editor), checksum
mismatches (bit rot, manual tampering), foreign JSON, version skew,
concurrent multi-process writers, and stale-entry eviction through
``validated_lookup``.
"""

import json
import multiprocessing
import os

import pytest

from repro.core.compiler import CompilerOptions, SplCompiler
from repro.search.dp import SMALL_TRANSFORM, search_small_sizes
from repro.wisdom.store import WISDOM_FORMAT, WISDOM_VERSION, WisdomStore

FAULT_INJECT = os.environ.get("SPL_FAULT_INJECT") == "1"

requires_posix = pytest.mark.skipif(
    os.name != "posix", reason="fork-based concurrency test"
)


def seeded_store(path, n=8):
    """A saved store with one entry, returning (store, file text)."""
    store = WisdomStore(path)
    store.record("fft-small", n, formula=f"(F {n})", seconds=1.0,
                 mflops=2.0)
    return store, path.read_text()


class TestTruncationRecovery:
    def test_truncated_file_recovers_cleanly(self, tmp_path):
        # Regression: a file cut off mid-write (non-atomic writer,
        # full disk) must load as empty — no exception — and be
        # quarantined aside so the next save starts fresh.
        path = tmp_path / "wisdom.json"
        _, text = seeded_store(path)
        path.write_text(text[: len(text) // 2])
        store = WisdomStore(path)
        assert len(store) == 0
        assert store.load_errors == 1
        assert store.quarantined == 1
        corpse = tmp_path / "wisdom.json.corrupt"
        assert corpse.exists()
        assert not path.exists()  # moved, not copied
        # The store is fully usable afterwards.
        store.record("fft-small", 4, formula="(F 4)", seconds=1.0,
                     mflops=2.0)
        assert WisdomStore(path).lookup("fft-small", 4) is not None

    def test_empty_file_recovers(self, tmp_path):
        path = tmp_path / "wisdom.json"
        path.write_text("")
        store = WisdomStore(path)
        assert len(store) == 0
        assert store.load_errors == 1

    def test_successive_corruptions_both_survive(self, tmp_path):
        # Regression: the quarantine rename used a fixed .corrupt name,
        # so a second corruption silently clobbered the first corpse.
        path = tmp_path / "wisdom.json"
        path.write_text("{first corruption")
        store = WisdomStore(path)
        assert store.quarantined == 1
        path.write_text("{second corruption")
        store.load()
        assert store.quarantined == 2
        first = tmp_path / "wisdom.json.corrupt"
        second = tmp_path / "wisdom.json.corrupt.1"
        assert first.exists() and second.exists()
        assert first.read_text() == "{first corruption"
        assert second.read_text() == "{second corruption"


class TestChecksum:
    def test_tampered_entries_fail_checksum(self, tmp_path):
        path = tmp_path / "wisdom.json"
        _, text = seeded_store(path)
        data = json.loads(text)
        key = next(iter(data["entries"]))
        data["entries"][key]["seconds"] = 0.0  # the tampering
        path.write_text(json.dumps(data))
        store = WisdomStore(path)
        assert len(store) == 0
        assert store.load_errors == 1
        assert store.quarantined == 1
        assert (tmp_path / "wisdom.json.corrupt").exists()

    def test_saved_payload_carries_valid_checksum(self, tmp_path):
        path = tmp_path / "wisdom.json"
        _, text = seeded_store(path)
        data = json.loads(text)
        assert data["format"] == WISDOM_FORMAT
        assert data["version"] == WISDOM_VERSION
        assert "checksum" in data
        # Round-trip: an untampered file loads its entry back.
        assert WisdomStore(path).lookup("fft-small", 8) is not None


class TestBenignMismatches:
    def test_foreign_json_is_not_quarantined(self, tmp_path):
        # Some other program's file: discard, but never rename — it is
        # not ours to destroy.
        path = tmp_path / "wisdom.json"
        path.write_text(json.dumps({"hello": "world"}))
        store = WisdomStore(path)
        assert len(store) == 0
        assert store.quarantined == 0
        assert path.exists()

    def test_unknown_version_discards_without_quarantine(self, tmp_path):
        path = tmp_path / "wisdom.json"
        _, text = seeded_store(path)
        data = json.loads(text)
        data["version"] = WISDOM_VERSION + 97  # never shipped
        path.write_text(json.dumps(data))
        store = WisdomStore(path)
        assert len(store) == 0
        assert store.version_mismatches == 1
        assert store.quarantined == 0
        assert path.exists()

    def test_v1_file_migrates_entries_and_upgrades(self, tmp_path):
        # A version-1 store (pre-checksum) is not discarded: its
        # entries load, the migration is counted, and the file is
        # rewritten as v2 — round-tripping through a fresh store.
        path = tmp_path / "wisdom.json"
        _, text = seeded_store(path)
        data = json.loads(text)
        data["version"] = 1
        del data["checksum"]
        path.write_text(json.dumps(data))
        store = WisdomStore(path)
        assert store.lookup("fft-small", 8) is not None
        assert store.migrations == 1
        assert store.version_mismatches == 0
        assert store.quarantined == 0
        upgraded = json.loads(path.read_text())
        assert upgraded["version"] == WISDOM_VERSION
        assert "checksum" in upgraded
        fresh = WisdomStore(path)
        assert fresh.lookup("fft-small", 8) is not None
        assert fresh.migrations == 0


class TestAtomicity:
    def test_save_leaves_no_temp_files(self, tmp_path):
        path = tmp_path / "wisdom.json"
        seeded_store(path)
        leftovers = [p.name for p in tmp_path.iterdir()
                     if ".tmp" in p.name]
        assert leftovers == []

    def test_unwritable_path_counts_error_not_raise(self, tmp_path):
        store = WisdomStore(tmp_path)  # a directory: unwritable target
        store.record("fft-small", 8, formula="(F 8)", seconds=1.0,
                     mflops=2.0)
        assert store.save_errors >= 1


class TestMergeOnSave:
    def test_two_instances_merge_distinct_keys(self, tmp_path):
        path = tmp_path / "wisdom.json"
        a = WisdomStore(path)
        b = WisdomStore(path)  # loaded before a ever saved
        a.record("fft-small", 4, formula="(F 4)", seconds=1.0, mflops=2.0)
        b.record("fft-small", 8, formula="(F 8)", seconds=1.0, mflops=2.0)
        assert b.merged == 1  # b adopted a's entry before rewriting
        final = WisdomStore(path)
        assert final.lookup("fft-small", 4) is not None
        assert final.lookup("fft-small", 8) is not None

    def test_local_entry_wins_key_conflicts(self, tmp_path):
        path = tmp_path / "wisdom.json"
        a = WisdomStore(path)
        b = WisdomStore(path)
        a.record("fft-small", 8, formula="(F 8)", seconds=9.0, mflops=1.0)
        b.record("fft-small", 8, formula="(F 8)", seconds=3.0, mflops=2.0)
        final = WisdomStore(path)
        assert final.lookup("fft-small", 8).seconds == 3.0


def _writer(path, sizes, start):
    start.wait()
    store = WisdomStore(path)
    for n in sizes:
        store.record("fft-small", n, formula=f"(F {n})",
                     seconds=float(n), mflops=1.0)


@requires_posix
class TestConcurrentWriters:
    def test_concurrent_processes_lose_no_updates(self, tmp_path):
        # The concurrent-writers test the CI fault-injection job runs:
        # several processes hammer one store file with distinct keys;
        # advisory locking + merge-on-save must preserve every one.
        writers = 8 if FAULT_INJECT else 4
        per_writer = 3
        path = tmp_path / "wisdom.json"
        ctx = multiprocessing.get_context("fork")
        start = ctx.Event()
        jobs = []
        for i in range(writers):
            sizes = [1000 * (i + 1) + j for j in range(per_writer)]
            jobs.append(ctx.Process(target=_writer,
                                    args=(path, sizes, start)))
        for job in jobs:
            job.start()
        start.set()  # release every writer at once
        for job in jobs:
            job.join(60)
            assert job.exitcode == 0
        final = WisdomStore(path)
        for i in range(writers):
            for j in range(per_writer):
                n = 1000 * (i + 1) + j
                assert final.lookup("fft-small", n) is not None, n
        assert len(final) == writers * per_writer


class TestValidatedLookup:
    def _store_with_entry(self, tmp_path):
        path = tmp_path / "wisdom.json"
        store = WisdomStore(path)
        store.record("fft-small", 8, formula="(F 8)", seconds=1.0,
                     mflops=2.0)
        return store

    def test_rejected_entry_is_evicted_and_persisted_away(self, tmp_path):
        store = self._store_with_entry(tmp_path)
        assert store.validated_lookup(
            "fft-small", 8, validate=lambda entry: False) is None
        assert store.evictions == 1
        assert len(store) == 0
        # The eviction reached disk: a fresh load misses too.
        assert WisdomStore(store.path).lookup("fft-small", 8) is None

    def test_raising_validator_counts_as_rejection(self, tmp_path):
        store = self._store_with_entry(tmp_path)

        def explode(entry):
            raise RuntimeError("validator bug")

        assert store.validated_lookup(
            "fft-small", 8, validate=explode) is None
        assert store.evictions == 1

    def test_accepted_entry_survives(self, tmp_path):
        store = self._store_with_entry(tmp_path)
        entry = store.validated_lookup(
            "fft-small", 8, validate=lambda e: e.formula == "(F 8)")
        assert entry is not None
        assert store.evictions == 0


class TestSearchReplayValidation:
    def test_stale_wisdom_formula_is_evicted_and_remeasured(self, tmp_path):
        # Plant a wisdom entry whose formula is *not* an 8-point DFT
        # (the identity): the search must re-validate on replay, evict
        # it, and fall back to a real measured search.
        compiler = SplCompiler(CompilerOptions(
            unroll=True, optimize="default", datatype="complex",
            codetype="real", language="c",
        ))
        path = tmp_path / "wisdom.json"
        store = WisdomStore(path)
        store.record(SMALL_TRANSFORM, 8, compiler.options,
                     formula="(I 8)", seconds=1e-9, mflops=1e6)
        results = search_small_sizes(
            (8,), compiler=compiler, min_time=0.001, wisdom=store,
        )
        assert store.evictions == 1
        result = results[8]
        assert not result.from_wisdom
        assert result.candidates_tried > 0
        # The re-measured winner replaced the poison on disk.
        fresh = WisdomStore(path)
        entry = fresh.lookup(SMALL_TRANSFORM, 8, compiler.options)
        assert entry is not None
        assert entry.formula != "(I 8)"
