"""Wisdom packs: build / verify / salvage / hot boot without a toolchain.

The failure matrix mirrors the store's crash-safety tests one level
up: flipped bytes cost exactly the entries they touch, foreign or
stale packs are rejected whole with typed diagnostics, and nothing in
:func:`load_pack` ever raises.  The headline robustness claim — a
replica with **no C compiler** serves its first request from a pack's
bundled artifacts on the C backend — is asserted with a test double
that makes the toolchain lookup fail, so any code path that still
shells out to gcc breaks loudly.
"""

from __future__ import annotations

import base64
import json

import numpy as np
import pytest

from repro.perfeval import ccompile
from repro.wisdom.keys import platform_fingerprint
from repro.wisdom.pack import (
    PACK_FORMAT,
    PACK_VERSION,
    PackDiagnostic,
    build_pack,
    inspect_pack,
    load_pack,
    verify_pack,
)
from repro.wisdom.store import WisdomStore

needs_cc = pytest.mark.skipif(not ccompile.have_c_compiler(),
                              reason="artifact bundling needs a C compiler")


def seeded_store(tmp_path, sizes=(4, 8)):
    store = WisdomStore(tmp_path / "wisdom.json")
    for n in sizes:
        store.record("fft-small", n, formula=f"(F {n})",
                     seconds=float(n), mflops=2.0)
    return store


def built_pack(tmp_path, sizes=(4, 8), **kwargs):
    store = seeded_store(tmp_path, sizes)
    pack_path = tmp_path / "wisdom.pack"
    kwargs.setdefault("include_artifacts", False)
    summary = build_pack(store, pack_path, **kwargs)
    return store, pack_path, summary


class TestBuildAndVerify:
    def test_round_trip_verifies_clean(self, tmp_path):
        _, pack_path, summary = built_pack(tmp_path)
        assert summary["entries"] == 2
        ok, diagnostics, info = verify_pack(pack_path)
        assert ok, diagnostics
        assert info["entries"] == 2
        assert info["platform"] == platform_fingerprint()

    def test_inspect_summarizes_without_judging(self, tmp_path):
        _, pack_path, _ = built_pack(tmp_path)
        info = inspect_pack(pack_path)
        assert info["format"] == PACK_FORMAT
        assert info["version"] == PACK_VERSION
        assert info["transforms"] == {"fft-small": [4, 8]}
        assert inspect_pack(tmp_path / "nope.pack")["error"].startswith(
            "[io]")

    def test_flipped_entry_byte_is_diagnosed(self, tmp_path):
        _, pack_path, _ = built_pack(tmp_path)
        data = json.loads(pack_path.read_text())
        key = sorted(data["entries"])[0]
        data["entries"][key]["entry"]["seconds"] = 0.0
        pack_path.write_text(json.dumps(data))
        ok, diagnostics, _ = verify_pack(pack_path)
        assert not ok
        kinds = {d.kind for d in diagnostics}
        assert kinds == {"pack-checksum", "entry"}


class TestLoadPackDegradation:
    def test_clean_pack_loads_everything(self, tmp_path):
        store, pack_path, _ = built_pack(tmp_path)
        result = load_pack(pack_path, install_artifacts=False)
        assert result.ok
        assert result.entries_loaded == 2
        assert len(result.store) == 2
        assert result.store.lookup("fft-small", 8) is not None
        # The pack store is read-only in spirit: autosave is off and
        # there is no backing path to clobber.
        assert result.store.path is None

    def test_damaged_entry_is_salvaged_around(self, tmp_path):
        _, pack_path, _ = built_pack(tmp_path, sizes=(2, 4, 8))
        data = json.loads(pack_path.read_text())
        key = sorted(data["entries"])[0]
        data["entries"][key]["entry"]["seconds"] = 0.0
        pack_path.write_text(json.dumps(data))
        result = load_pack(pack_path, install_artifacts=False)
        assert result.store is not None
        assert result.entries_loaded == 2
        assert result.entries_skipped == 1
        kinds = {d.kind for d in result.diagnostics}
        assert kinds == {"pack-checksum", "entry"}

    def test_foreign_platform_rejected_whole(self, tmp_path):
        store = seeded_store(tmp_path)
        pack_path = tmp_path / "foreign.pack"
        build_pack(store, pack_path, include_artifacts=False,
                   platform="some-other-machine")
        result = load_pack(pack_path)
        assert result.store is None
        assert [d.kind for d in result.diagnostics] == ["platform"]
        ok, diagnostics, _ = verify_pack(pack_path)
        assert not ok
        assert any(d.kind == "platform" for d in diagnostics)

    def test_unknown_version_rejected_whole(self, tmp_path):
        _, pack_path, _ = built_pack(tmp_path)
        data = json.loads(pack_path.read_text())
        data["version"] = PACK_VERSION + 13
        pack_path.write_text(json.dumps(data))
        result = load_pack(pack_path)
        assert result.store is None
        assert [d.kind for d in result.diagnostics] == ["version"]

    def test_unreadable_and_non_json_never_raise(self, tmp_path):
        result = load_pack(tmp_path / "missing.pack")
        assert result.store is None
        assert [d.kind for d in result.diagnostics] == ["io"]
        garbage = tmp_path / "garbage.pack"
        garbage.write_text("not json {{{")
        result = load_pack(garbage)
        assert result.store is None
        assert [d.kind for d in result.diagnostics] == ["json"]
        not_ours = tmp_path / "other.pack"
        not_ours.write_text(json.dumps({"hello": "world"}))
        result = load_pack(not_ours)
        assert result.store is None
        assert [d.kind for d in result.diagnostics] == ["format"]

    def test_diagnostic_describe_is_typed(self):
        diagnostic = PackDiagnostic("platform", "wrong host")
        assert diagnostic.describe() == "[platform] wrong host"


@needs_cc
class TestArtifacts:
    def test_artifacts_bundle_and_verify(self, tmp_path):
        _, pack_path, summary = built_pack(tmp_path,
                                           include_artifacts=True)
        assert summary["artifacts"] >= 1
        ok, diagnostics, info = verify_pack(pack_path)
        assert ok, diagnostics
        assert info["artifacts"] == summary["artifacts"]

    def test_corrupt_artifact_skipped_entries_survive(self, tmp_path):
        _, pack_path, _ = built_pack(tmp_path, include_artifacts=True)
        data = json.loads(pack_path.read_text())
        digest = sorted(data["artifacts"])[0]
        blob = base64.b64decode(data["artifacts"][digest]["data"])
        data["artifacts"][digest]["data"] = base64.b64encode(
            b"\x00" + blob[1:]).decode("ascii")
        pack_path.write_text(json.dumps(data))
        target = tmp_path / "build"
        target.mkdir()
        result = load_pack(pack_path, build_dir=target)
        assert result.store is not None
        assert result.entries_loaded == 2
        assert result.artifacts_skipped >= 1
        assert any(d.kind == "artifact" for d in result.diagnostics)
        assert not (target / f"spl_{digest}.so").exists()

    def test_hot_boot_serves_c_backend_without_toolchain(
            self, tmp_path, monkeypatch):
        """The acceptance test: ``spl pack build`` on a host with gcc,
        then a consumer whose toolchain lookup is a failing double
        still serves the packed route on the C backend — first request,
        no search, no compiler."""
        from repro.core.compiler import CompilerOptions, SplCompiler
        from repro.search.dp import SMALL_TRANSFORM
        from repro.serve.plans import PlanKey, PlanRegistry

        n = 8
        # Producer: a search winner for fft:8 plus its compiled
        # portable artifact (what the CI pack job ships).
        store = WisdomStore(tmp_path / "wisdom.json")
        options = SplCompiler(CompilerOptions(
            unroll=True, optimize="default", datatype="complex",
            codetype="real", language="c")).options
        store.record(SMALL_TRANSFORM, n, options, formula=f"(F {n})",
                     seconds=1e-6, mflops=100.0)
        pack_path = tmp_path / "wisdom.pack"
        summary = build_pack(store, pack_path, include_artifacts=True)
        assert summary["artifacts"] >= 1

        # Consumer: fresh shared-object cache, *no* C compiler.
        build_dir = tmp_path / "consumer-build"
        build_dir.mkdir()
        monkeypatch.setenv("SPL_BUILD_DIR", str(build_dir))
        monkeypatch.setattr(ccompile, "_find_compiler", lambda: None)
        assert not ccompile.have_c_compiler()

        result = load_pack(pack_path, build_dir=build_dir)
        assert result.ok, [d.describe() for d in result.diagnostics]
        assert result.artifacts_installed == summary["artifacts"]

        registry = PlanRegistry(prefer="c", wisdom=result.store,
                                wisdom_source="pack")
        plan = registry.get(PlanKey(transform="fft", n=n,
                                    dtype="complex128"))
        assert plan.from_wisdom
        assert plan.executable.backend == "c"
        x = np.random.default_rng(3).standard_normal(n) \
            + 1j * np.random.default_rng(4).standard_normal(n)
        np.testing.assert_allclose(plan.executable.apply(x),
                                   np.fft.fft(x), atol=1e-9)
        assert registry.stats()["wisdom_boots"] == 1
        assert registry.stats()["wisdom_source"] == "pack"
