"""Tests for the wisdom subsystem: keys, store, parallel measurement,
the in-process compile memo, and warm-store search replay."""

import json
from types import SimpleNamespace

import pytest

from repro.core.compiler import CompilerOptions, SplCompiler
from repro.core.nodes import fourier
from repro.fftw.planner import Planner
from repro.wisdom import (
    WisdomStore,
    compile_key,
    map_indexed,
    options_fingerprint,
    options_hash,
    pick_winner,
    platform_fingerprint,
    resolve_jobs,
    wisdom_key,
)
from repro.wisdom.store import WISDOM_VERSION


def fake_measurements(compiler, formulas, **kwargs):
    """Deterministic stub: candidate i takes (i+1) ms."""
    return [
        SimpleNamespace(formula=formula, seconds=0.001 * (index + 1),
                        mflops=100.0 / (index + 1))
        for index, formula in enumerate(formulas)
    ]


class TestKeys:
    def test_options_fingerprint_stable_and_distinct(self):
        a = CompilerOptions(datatype="real")
        b = CompilerOptions(datatype="real")
        c = CompilerOptions(datatype="complex")
        assert options_fingerprint(a) == options_fingerprint(b)
        assert options_fingerprint(a) != options_fingerprint(c)
        assert options_hash(a) == options_hash(b)
        assert options_hash(a) != options_hash(c)

    def test_none_options(self):
        assert options_fingerprint(None) == "default"
        assert len(options_hash(None)) == 16

    def test_compile_key_covers_every_knob(self):
        base = dict(datatype=None, language=None, strided=False,
                    vectorize=1, template_version=0)
        key = compile_key("(F 4)", None, **base)
        for change in (
            dict(base, datatype="real"),
            dict(base, language="c"),
            dict(base, strided=True),
            dict(base, vectorize=2),
            dict(base, template_version=1),
        ):
            assert compile_key("(F 4)", None, **change) != key
        assert compile_key("(F 8)", None, **base) != key
        assert compile_key("(F 4)", None, **base) == key

    def test_wisdom_key_shape(self):
        key = wisdom_key("fft-small", 16, None)
        assert key.startswith("fft-small:16:")

    def test_platform_fingerprint_is_stable(self):
        assert platform_fingerprint() == platform_fingerprint()
        assert len(platform_fingerprint()) == 16


class TestStore:
    def test_hit_and_miss_counters(self):
        store = WisdomStore()
        assert store.lookup("fft-small", 8) is None
        assert store.stats()["misses"] == 1
        store.record("fft-small", 8, formula="(F 8)", seconds=1.0,
                     mflops=2.0)
        entry = store.lookup("fft-small", 8)
        assert entry is not None and entry.formula == "(F 8)"
        assert store.stats()["hits"] == 1
        assert store.stats()["stores"] == 1

    def test_options_partition_the_table(self):
        store = WisdomStore()
        store.record("fft-small", 8, CompilerOptions(unroll=True),
                     formula="(F 8)", seconds=1.0, mflops=2.0)
        assert store.lookup("fft-small", 8, CompilerOptions()) is None
        assert store.lookup("fft-small", 8,
                            CompilerOptions(unroll=True)) is not None

    def test_persistence_round_trip(self, tmp_path):
        path = tmp_path / "wisdom.json"
        store = WisdomStore(path)
        store.record("fft-small", 8, formula="(F 8)", seconds=0.5,
                     mflops=3.0, rules=["multi"])
        assert path.exists()
        assert store.stats()["bytes_written"] > 0
        reloaded = WisdomStore(path)
        entry = reloaded.lookup("fft-small", 8)
        assert entry is not None
        assert entry.seconds == 0.5
        assert entry.meta["rules"] == ["multi"]

    def test_corrupt_file_falls_back_empty(self, tmp_path):
        path = tmp_path / "wisdom.json"
        path.write_text("{ this is not json")
        store = WisdomStore(path)
        assert len(store) == 0
        assert store.stats()["load_errors"] == 1

    def test_wrong_format_falls_back_empty(self, tmp_path):
        path = tmp_path / "wisdom.json"
        path.write_text(json.dumps({"format": "something-else"}))
        store = WisdomStore(path)
        assert len(store) == 0
        assert store.stats()["load_errors"] == 1

    def test_version_mismatch_falls_back_empty(self, tmp_path):
        path = tmp_path / "wisdom.json"
        good = WisdomStore(path)
        good.record("fft-small", 8, formula="(F 8)", seconds=1.0, mflops=1.0)
        data = json.loads(path.read_text())
        data["version"] = WISDOM_VERSION + 1
        path.write_text(json.dumps(data))
        store = WisdomStore(path)
        assert len(store) == 0
        assert store.stats()["version_mismatches"] == 1

    def test_platform_mismatch_falls_back_empty(self, tmp_path):
        path = tmp_path / "wisdom.json"
        producer = WisdomStore(path, platform="machine-a")
        producer.record("fft-small", 8, formula="(F 8)", seconds=1.0,
                        mflops=1.0)
        consumer = WisdomStore(path, platform="machine-b")
        assert len(consumer) == 0
        assert consumer.stats()["platform_mismatches"] == 1
        # The original machine still reads its own wisdom.
        again = WisdomStore(path, platform="machine-a")
        assert len(again) == 1

    def test_unwritable_path_degrades_gracefully(self, tmp_path):
        # Pointing wisdom at a directory must not kill the search that
        # produced the entry: record() keeps the in-memory table and
        # save() reports the failure through a counter.
        store = WisdomStore(tmp_path)  # tmp_path is a directory
        entry = store.record("fft-small", 8, formula="(F 8)", seconds=1.0,
                             mflops=1.0)
        assert entry is not None
        assert len(store) == 1
        assert store.save() is False
        assert store.stats()["save_errors"] >= 1
        assert store.stats()["saves"] == 0

    def test_invalidate(self, tmp_path):
        store = WisdomStore(tmp_path / "wisdom.json")
        store.record("fft-small", 8, formula="(F 8)", seconds=1.0, mflops=1.0)
        store.record("fft-small", 16, formula="(F 16)", seconds=1.0,
                     mflops=1.0)
        store.record("fft-large", 128, formula="x", seconds=1.0, mflops=1.0)
        assert store.invalidate("fft-small", 8) == 1
        assert store.invalidate("fft-large") == 1
        assert len(store) == 1
        assert len(WisdomStore(store.path)) == 1  # persisted
        assert store.invalidate() == 1
        assert len(store) == 0

    def test_describe(self):
        store = WisdomStore()
        assert "wisdom[<memory>]" in store.describe()
        assert "0 entries" in store.describe()


class TestParallelHelpers:
    def test_map_indexed_preserves_order(self):
        items = list(range(20))
        serial = map_indexed(items, lambda i, x: (i, x * x), jobs=1)
        threaded = map_indexed(items, lambda i, x: (i, x * x), jobs=4)
        assert serial == threaded == [(i, i * i) for i in items]

    def test_pick_winner_ties_break_on_lowest_index(self):
        results = [(1.0, "a"), (0.5, "b"), (0.5, "c"), (0.7, "d")]
        index, winner = pick_winner(results, key=lambda r: r[0])
        assert index == 1 and winner == (0.5, "b")

    def test_pick_winner_rejects_empty(self):
        with pytest.raises(ValueError):
            pick_winner([], key=lambda r: r)

    def test_resolve_jobs(self):
        assert resolve_jobs(1) == 1
        assert resolve_jobs(4) == 4
        assert resolve_jobs(-3) == 1
        assert resolve_jobs(None) >= 1
        assert resolve_jobs(0) >= 1


class TestCompileMemo:
    def test_repeat_compile_hits_cache(self):
        compiler = SplCompiler(CompilerOptions(codetype="real"))
        first = compiler.compile_formula("(F 4)", "a", language="python")
        second = compiler.compile_formula("(F 4)", "b", language="python")
        assert second is first  # the memo keeps the first call's name
        stats = compiler.compile_cache_stats()
        assert stats["hits"] == 1 and stats["misses"] == 1

    def test_different_knobs_miss(self):
        compiler = SplCompiler(CompilerOptions(codetype="real"))
        a = compiler.compile_formula("(F 4)", "a", language="python")
        b = compiler.compile_formula("(F 4)", "b", language="python",
                                     vectorize=2)
        assert b is not a

    def test_template_registration_invalidates(self):
        from repro.formulas.factorization import ct_dit
        from repro.search.large import register_codelet_template

        compiler = SplCompiler(CompilerOptions(language="python"))
        first = compiler.compile_formula("(F 4)", "a")
        register_codelet_template(compiler, 4, ct_dit(2, 2))
        second = compiler.compile_formula("(F 4)", "b")
        assert second is not first

    def test_clear_compile_cache(self):
        compiler = SplCompiler(CompilerOptions(language="python"))
        first = compiler.compile_formula("(I 4)", "a")
        compiler.clear_compile_cache()
        assert compiler.compile_formula("(I 4)", "b") is not first


class TestExplicitArgumentPrecedence:
    def test_explicit_datatype_beats_session_options(self):
        compiler = SplCompiler(CompilerOptions(datatype="complex"))
        routine = compiler.compile_formula("(I 4)", "r", datatype="real")
        assert routine.program.datatype == "real"
        assert routine.program.element_width == 1

    def test_session_datatype_still_applies_by_default(self):
        compiler = SplCompiler(CompilerOptions(datatype="complex"))
        routine = compiler.compile_formula("(I 4)", "c")
        assert routine.program.datatype == "complex"

    def test_explicit_language_beats_session_options(self):
        compiler = SplCompiler(CompilerOptions(language="c",
                                               codetype="real"))
        routine = compiler.compile_formula("(I 4)", "p", language="python")
        assert routine.language == "python"
        assert "def p(" in routine.source

    def test_directives_still_overridden_by_session(self):
        # compile_text keeps the old precedence: session options beat
        # in-file #directives.
        compiler = SplCompiler(CompilerOptions(language="python",
                                               codetype="real"))
        routines = compiler.compile_text("#language fortran\n(I 2)\n")
        assert routines[0].language == "python"


class TestWarmSearchReplaysWithoutMeasuring:
    def test_small_search_zero_remeasurements(self, tmp_path, monkeypatch):
        import repro.search.dp as dp

        calls = {"measured": 0}

        def counting_measure(compiler, formulas, **kwargs):
            calls["measured"] += len(formulas)
            return fake_measurements(compiler, formulas)

        monkeypatch.setattr(dp, "measure_formulas", counting_measure)
        path = tmp_path / "wisdom.json"
        cold = dp.search_small_sizes((2, 4, 8), wisdom=WisdomStore(path))
        assert calls["measured"] > 0

        calls["measured"] = 0
        warm_store = WisdomStore(path)
        warm = dp.search_small_sizes((2, 4, 8), wisdom=warm_store)
        assert calls["measured"] == 0
        assert warm_store.stats()["hits"] == 3
        assert warm_store.stats()["misses"] == 0
        for n in (2, 4, 8):
            assert warm[n].from_wisdom
            assert warm[n].candidates_tried == 0
            assert warm[n].formula.to_spl() == cold[n].formula.to_spl()
            assert "(wisdom)" in warm[n].describe()

    def test_wisdom_respects_compiler_options(self, tmp_path, monkeypatch):
        import repro.search.dp as dp

        monkeypatch.setattr(dp, "measure_formulas", fake_measurements)
        path = tmp_path / "wisdom.json"
        compiler_a = SplCompiler(CompilerOptions(
            unroll=True, datatype="complex", codetype="real", language="c"))
        dp.search_small_sizes((4,), compiler=compiler_a,
                              wisdom=WisdomStore(path))
        # Different options hash: no replay, a fresh search runs.
        compiler_b = SplCompiler(CompilerOptions(
            datatype="complex", codetype="real", language="c"))
        store = WisdomStore(path)
        result = dp.search_small_sizes((4,), compiler=compiler_b,
                                       wisdom=store)
        assert not result[4].from_wisdom
        assert store.stats()["misses"] == 1


class _FakePlanLibrary:
    """Duck-typed FftwLibrary: counts how many candidates get timed."""

    codelet_sizes = (2, 4, 8)

    def __init__(self):
        self.timed = 0

    def codelet_flops(self, n):
        return 5 * n

    def transform(self, plan):
        outer = self

        class _Transform:
            def timer_closure(self):
                outer.timed += 1
                return lambda: None

        return _Transform()


class TestWarmPlannerReplaysWithoutMeasuring:
    def test_measure_mode_zero_timings_when_warm(self, tmp_path):
        path = tmp_path / "wisdom.json"
        cold_lib = _FakePlanLibrary()
        cold = Planner(cold_lib, min_time=1e-5, wisdom=WisdomStore(path))
        cold_plan = cold.plan_measure(64)
        assert cold_lib.timed > 0
        assert cold.candidates_timed == cold_lib.timed

        warm_lib = _FakePlanLibrary()
        warm = Planner(warm_lib, min_time=1e-5, wisdom=WisdomStore(path))
        warm_plan = warm.plan_measure(64)
        assert warm_lib.timed == 0
        assert warm.candidates_timed == 0
        assert warm_plan.radices == cold_plan.radices

    def test_estimate_mode_round_trips(self, tmp_path):
        path = tmp_path / "wisdom.json"
        cold = Planner(_FakePlanLibrary(), wisdom=WisdomStore(path))
        cold_plan = cold.plan_estimate(128)
        warm = Planner(_FakePlanLibrary(), wisdom=WisdomStore(path))
        assert warm.plan_estimate(128).radices == cold_plan.radices

    def test_codelet_set_partitions_wisdom(self, tmp_path):
        path = tmp_path / "wisdom.json"
        cold = Planner(_FakePlanLibrary(), min_time=1e-5,
                       wisdom=WisdomStore(path))
        cold.plan_measure(64)

        class _OtherLibrary(_FakePlanLibrary):
            codelet_sizes = (2, 4)

        other_lib = _OtherLibrary()
        other = Planner(other_lib, min_time=1e-5, wisdom=WisdomStore(path))
        other.plan_measure(64)
        assert other_lib.timed > 0  # different codelets: no stale replay


class TestDeterminism:
    def test_parallel_and_serial_pick_the_same_winner(self, monkeypatch):
        import repro.search.measure as sm
        from repro.search.dp import search_small_sizes

        # Constant stubbed timings: every candidate ties, so only the
        # index tie-break decides — parallel order must not leak in.
        monkeypatch.setattr(
            sm, "time_callable",
            lambda fn, *, min_time=0.0, repeats=1: 0.001,
        )
        serial = search_small_sizes((8,), max_candidates=4, jobs=1)
        parallel = search_small_sizes((8,), max_candidates=4, jobs=4)
        assert serial[8].formula.to_spl() == parallel[8].formula.to_spl()
        assert serial[8].seconds == parallel[8].seconds
